"""Linear optimization demo — the paper's core contribution end to end.

Takes the Oversampler application (four cascaded interpolation stages, all
linear), shows linear extraction, combination, frequency translation and
automatic selection, and measures the real throughput gain of each.

Run with:  python examples/linear_optimization.py
"""

import time

import numpy as np

from repro.apps import oversampler
from repro.bench import measure_throughput, normalize_periods
from repro.linear import (
    apply_combination,
    apply_frequency,
    apply_selection,
    collapse_linear,
    compare,
)


def main() -> None:
    app = oversampler.build()
    print("== Oversampler: 4 stages of (expand 2 -> 64-tap half-band FIR) ==")

    # The whole interior collapses to ONE linear node.
    from repro.graph import Pipeline
    from repro.transforms import clone_stream

    interior = [clone_stream(c) for c in app.children()[1:-1]]
    rep = collapse_linear(Pipeline(*interior))
    print(f"collapsed interior: peek={rep.peek} pop={rep.pop} push={rep.push}")
    print(f"matrix nonzeros: {rep.nnz()} of {rep.A.size}")

    cost = compare(rep)
    print(
        f"cost model: direct {cost.direct:.0f} flops/input, "
        f"frequency {cost.freq:.0f} flops/input (block {cost.block}) -> "
        f"{'frequency' if cost.freq_wins else 'direct'} wins"
    )

    # Wall-clock measurements of each optimization level, under both the
    # scalar reference interpreter and the batched execution engine.
    periods = 30
    base = measure_throughput(oversampler.build, periods)
    print(f"\n{'variant':12s} {'items/s':>12s} {'speedup':>8s} {'batched it/s':>13s}")
    base_batched = measure_throughput(oversampler.build, periods, engine="batched")
    print(
        f"{'baseline':12s} {base.items_per_second:12.0f} {'1.00':>8s} "
        f"{base_batched.items_per_second:13.0f}"
    )
    for label, transform in (
        ("combine", apply_combination),
        ("frequency", apply_frequency),
        ("autosel", apply_selection),
    ):
        builder = lambda t=transform: t(oversampler.build())[0]
        opt_periods = normalize_periods(oversampler.build, builder, periods)
        sample = measure_throughput(builder, opt_periods)
        batched = measure_throughput(builder, opt_periods, engine="batched")
        print(
            f"{label:12s} {sample.items_per_second:12.0f} "
            f"{sample.items_per_second / base.items_per_second:8.2f} "
            f"{batched.items_per_second:13.0f}"
        )


if __name__ == "__main__":
    main()
