"""Quickstart: build a stream program, inspect it, optimize it, run it.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.common import FIRFilter, lowpass_taps
from repro.graph import ArraySource, CollectSink, Pipeline, validate
from repro.linear import apply_selection, try_extract
from repro.runtime import Interpreter
from repro.scheduling import build_schedule, verify_program


def main() -> None:
    # 1. Build a stream graph: source -> two cascaded FIR filters -> sink.
    #    Filters declare static peek/pop/push rates; work() is plain Python.
    data = list(np.sin(np.arange(64) / 3.0))
    sink = CollectSink()
    app = Pipeline(
        ArraySource(data),
        FIRFilter(lowpass_taps(32, 0.25), name="antialias"),
        FIRFilter(lowpass_taps(16, 0.4), name="smooth"),
        sink,
        name="Quickstart",
    )

    # 2. Static analysis: validation, scheduling, safety verification.
    graph = validate(app)
    program = build_schedule(graph)
    print(f"flattened to {len(graph.nodes)} nodes / {len(graph.edges)} channels")
    print(f"steady state fires {program.steady.total_firings} times per period")
    print(f"verification: {verify_program(app).detail}")

    # 3. Linear analysis: both FIRs are linear (y = A.x), so the optimizer
    #    can collapse them into a single node — or move them into the
    #    frequency domain if the window is long enough to pay off.
    for filt in app.filters():
        result = try_extract(filt)
        if result.linear:
            rep = result.rep
            print(f"  {filt.name}: linear, peek={rep.peek} pop={rep.pop} push={rep.push}")

    optimized, report = apply_selection(app)
    print("optimizer decisions:", report.replacements or ["(kept everything)"])

    # 4. Execute both versions and compare.  engine="batched" compiles the
    #    schedule into block kernels over numpy ring buffers — same outputs,
    #    orders of magnitude faster than firing work() per item.
    Interpreter(app, engine="batched").run(periods=100)
    baseline = np.array(sink.collected)

    opt_sink = next(f for f in optimized.filters() if isinstance(f, CollectSink))
    Interpreter(optimized, engine="batched").run(periods=100)
    out = np.array(opt_sink.collected)

    m = min(len(baseline), len(out))
    print(f"outputs match: {bool(np.allclose(baseline[:m], out[:m]))} over {m} items")


if __name__ == "__main__":
    main()
