"""Teleport messaging demo — the paper's frequency-hopping radio.

Runs the full trunked radio (mixer, booster, FFT, hop detection, quality
control) with teleport messaging, shows the retunes landing at their
wavefront-exact boundaries, and contrasts with the manual control-loop
implementation on the simulated parallel machine.

Run with:  python examples/teleport_radio.py [--engine {scalar,batched}]
           [--trace FILE]

``--trace`` records the demo run with streamscope (:mod:`repro.obs`) and
writes a Chrome trace-event JSON — load it in Perfetto, or summarize with
``python -m repro.obs report FILE`` (the teleport section shows each
retune's send→delivery latency checked against SDEP).
"""

import argparse

from repro.apps import freqhop
from repro.graph.builtins import CollectSink
from repro.machine import RawMachine
from repro.mapping.strategies import software_pipeline
from repro.runtime import Interpreter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=("scalar", "batched"),
        default="batched",
        help="execution engine (portals run batched now: receiver batches "
        "split at the SDEP-derived delivery points)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a streamscope Chrome trace of the demo run to FILE",
    )
    args = parser.parse_args()

    # Run the full demo radio with both portals live.
    app = freqhop.build()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    mixer = next(f for f in app.filters() if f.name == "rf2if")
    booster = next(f for f in app.filters() if f.name == "booster")

    interp = Interpreter(app, engine=args.engine, trace=args.trace)
    interp.run(periods=64)
    print(f"== trunked radio, 64 FFT blocks ({interp.engine_used} engine) ==")
    print(f"outputs produced:    {len(sink.collected)}")
    print(f"frequency hops:      {mixer.hops} (current {mixer.freq} Hz)")
    print(f"booster switches:    {booster.switches}")
    if args.trace:
        interp.close()
        print(f"trace written:       {args.trace} "
              f"(python -m repro.obs report {args.trace})")

    # The headline comparison: on a parallel machine the manual control
    # loop serializes the whole radio, teleport messaging does not.
    machine = RawMachine()
    teleport = software_pipeline(freqhop.build_teleport(), machine)
    manual = software_pipeline(freqhop.build_manual(), machine)
    print("\n== mapped to the 16-core machine (software pipelining) ==")
    print(f"teleport messaging:  {teleport.speedup:5.2f}x over one core")
    print(f"manual control loop: {manual.speedup:5.2f}x over one core")
    print(
        f"teleport improvement: "
        f"{100 * (teleport.speedup / manual.speedup - 1):.0f}% "
        "(the paper reports 49% on a cluster)"
    )


if __name__ == "__main__":
    main()
