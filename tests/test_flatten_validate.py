"""Tests for flattening and whole-graph semantic validation."""

import pytest

from repro.errors import ValidationError
from repro.graph import (
    ArraySource,
    CollectSink,
    FILTER,
    FeedbackLoop,
    Filter,
    Identity,
    JOINER,
    NullSink,
    Pipeline,
    SPLITTER,
    SplitJoin,
    duplicate,
    flatten,
    joiner_roundrobin,
    roundrobin,
    validate,
)
from tests.helpers import FIR, Downsample2, Gain


def simple_app():
    return Pipeline(ArraySource([1.0]), Gain(2.0), NullSink())


class TestFlatten:
    def test_filter_chain(self):
        graph = flatten(simple_app())
        assert [n.kind for n in graph.nodes] == [FILTER, FILTER, FILTER]
        assert len(graph.edges) == 2
        assert len(graph.sources) == 1
        assert len(graph.sinks) == 1

    def test_splitjoin_nodes(self):
        app = Pipeline(
            ArraySource([1.0]),
            SplitJoin(duplicate(), [Identity(), Identity()], joiner_roundrobin()),
            NullSink(),
        )
        graph = flatten(app)
        kinds = sorted(n.kind for n in graph.nodes)
        assert kinds.count(SPLITTER) == 1
        assert kinds.count(JOINER) == 1
        splitter = next(n for n in graph.nodes if n.kind == SPLITTER)
        assert splitter.out_rates == (1, 1)
        assert splitter.in_rates == (1,)

    def test_feedback_initial_items_on_loop_edge(self):
        loop = FeedbackLoop(
            joiner_roundrobin(1, 1), Identity(), roundrobin(1, 1), Identity(), delay=2
        )
        graph = flatten(Pipeline(ArraySource([1.0]), loop, NullSink()))
        delayed = [e for e in graph.edges if e.initial]
        assert len(delayed) == 1
        assert len(delayed[0].initial) == 2
        assert delayed[0].dst.kind == JOINER

    def test_open_stream_rejected(self):
        with pytest.raises(ValidationError):
            flatten(Pipeline(Gain(1.0), NullSink()))
        with pytest.raises(ValidationError):
            flatten(Pipeline(ArraySource([1.0]), Gain(1.0)))

    def test_edge_rates(self):
        graph = flatten(Pipeline(ArraySource([1.0]), Downsample2(), NullSink()))
        first, second = graph.edges
        assert first.push_rate == 1 and first.pop_rate == 2
        assert second.push_rate == 1 and second.pop_rate == 1

    def test_peek_rate_on_edge(self):
        graph = flatten(Pipeline(ArraySource([1.0]), FIR([1.0, 2.0, 3.0]), NullSink()))
        fir_edge = graph.edges[0]
        assert fir_edge.peek_rate == 3
        assert fir_edge.pop_rate == 1

    def test_node_for_lookup(self):
        gain = Gain(3.0)
        graph = flatten(Pipeline(ArraySource([1.0]), gain, NullSink()))
        assert graph.node_for(gain).obj is gain

    def test_topological_order_is_consistent(self):
        graph = flatten(simple_app())
        order = graph.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in graph.edges:
            assert pos[e.src] < pos[e.dst]

    def test_to_networkx(self):
        g = flatten(simple_app()).to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2


class TestValidate:
    def test_valid_program_passes(self):
        assert validate(simple_app()) is not None

    def test_missing_work_rejected(self):
        class NoWork(Filter):
            def __init__(self):
                super().__init__(pop=1, push=1)

        with pytest.raises(ValidationError):
            validate(Pipeline(ArraySource([1.0]), NoWork(), NullSink()))

    def test_zero_delay_cycle_rejected(self):
        loop = FeedbackLoop(
            joiner_roundrobin(1, 1), Identity(), roundrobin(1, 1), Identity(), delay=0
        )
        with pytest.raises(ValidationError):
            validate(Pipeline(ArraySource([1.0]), loop, NullSink()))

    def test_all_apps_validate(self):
        from repro.apps import ALL_APPS

        for name, builder in ALL_APPS.items():
            validate(builder())
