"""Integration tests: every application matches its numpy reference."""

import numpy as np
import pytest

from repro.apps import (
    ALL_APPS,
    EVALUATION_SUITE,
    beamformer,
    bitonic,
    channelvocoder,
    dct,
    des,
    dtoa,
    fft,
    filterbank,
    fir,
    fmradio,
    freqhop,
    mpeg2,
    oversampler,
    radar,
    rateconvert,
    serpent,
    targetdetect,
    tde,
    vocoder,
)
from repro.apps.common import signal
from repro.graph.builtins import CollectSink
from repro.runtime import Interpreter

#: (module, steady periods to run, input length for the builder)
CASES = [
    (fir, 100, 256),
    (rateconvert, 50, 300),
    (targetdetect, 60, 256),
    (oversampler, 20, 128),
    (dtoa, 40, 128),
    (fmradio, 40, 256),
    (filterbank, 30, 256),
    (channelvocoder, 30, 256),
    (dct, 4, 256),
    (fft, 4, 256),
    (tde, 6, 256),
    (bitonic, 12, 64),
    (des, 4, 256),
    (serpent, 3, 256),
    (radar, 8, 240),
    (vocoder, 40, 256),
    (mpeg2, 4, 288),
    (beamformer, 12, 240),
]


def run_app(module, periods, input_length):
    app = module.build(input_length=input_length)
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    Interpreter(app).run(periods=periods)
    return np.asarray(sink.collected)


@pytest.mark.parametrize("module,periods,input_length", CASES, ids=lambda c: getattr(c, "__name__", c))
def test_app_matches_reference(module, periods, input_length):
    got = run_app(module, periods, input_length)
    x = np.asarray(signal(input_length))
    tiles = max(2, int(np.ceil((len(got) * 4 + 64) / len(x))))
    ref = module.reference(np.tile(x, tiles))
    m = min(len(got), len(ref))
    assert m > 10, f"{module.__name__} produced too little output"
    assert np.allclose(got[:m], ref[:m], rtol=1e-6, atol=1e-8), module.__name__


class TestSuiteStructure:
    def test_evaluation_suite_has_twelve(self):
        assert len(EVALUATION_SUITE) == 12

    def test_all_apps_closed(self):
        from repro.graph import validate

        for name, builder in ALL_APPS.items():
            graph = validate(builder())
            assert graph.sources and graph.sinks, name

    def test_bitonic_sorts(self):
        got = run_app(bitonic, 8, 64)
        n = bitonic.DEFAULT_N
        for b in range(len(got) // n):
            block = got[b * n : (b + 1) * n]
            assert list(block) == sorted(block)

    def test_fft_is_invertible(self):
        """The TDE app's FFT/IFFT pair reconstructs its input."""
        got = run_app(tde, 4, 256)
        assert np.all(np.isfinite(got))

    def test_des_output_is_bits(self):
        got = run_app(des, 2, 256)
        assert set(np.unique(got)).issubset({0.0, 1.0})

    def test_serpent_output_is_bits(self):
        got = run_app(serpent, 2, 256)
        assert set(np.unique(got)).issubset({0.0, 1.0})

    def test_dct_energy_preserved(self):
        """The orthonormal 2-D DCT preserves block energy (Parseval)."""
        n = dct.SIZE
        app = dct.build()
        sink = next(f for f in app.filters() if isinstance(f, CollectSink))
        interp = Interpreter(app)
        interp.run(periods=2)
        x = np.asarray(signal(256))
        out = np.asarray(sink.collected)
        block_out = out[: n * n]
        block_in = x[: n * n]
        assert np.isclose(np.sum(block_out**2), np.sum(block_in**2), rtol=1e-6)


class TestFreqHop:
    def test_teleport_radio_retunes(self):
        app = freqhop.build_teleport()
        Interpreter(app).run(periods=40)
        mixer = next(f for f in app.filters() if f.name == "rf2if")
        assert mixer.hops >= 1

    def test_manual_radio_retunes(self):
        app = freqhop.build_manual()
        Interpreter(app).run(periods=40)
        mixer = next(f for f in app.filters() if "rf2if" in f.name)
        assert mixer.hops >= 1

    def test_full_demo_radio_runs(self):
        app = freqhop.build()
        sink = next(f for f in app.filters() if isinstance(f, CollectSink))
        Interpreter(app).run(periods=24)
        assert len(sink.collected) == 24 * freqhop.N


class TestLinearityOfApps:
    def test_fir_app_fully_linear_interior(self):
        from repro.linear import try_extract

        app = fir.build()
        interior = [
            f for f in app.filters() if f.rate.pop > 0 and f.rate.push > 0
        ]
        assert all(try_extract(f).linear for f in interior)

    def test_fft_kernel_filters_linear(self):
        from repro.linear import try_extract

        kernel = fft.fft_kernel(16)
        assert all(try_extract(f).linear for f in kernel.filters())

    def test_dct_matrix_extracted_exactly(self):
        from repro.linear import extract_linear

        from repro.apps.common import MatrixFilter

        m = dct.dct_matrix(8)
        rep = extract_linear(MatrixFilter(m.tolist()))
        assert np.allclose(rep.A, m)

    def test_equalizer_collapses(self):
        from repro.linear import collapse_linear

        eq = fmradio.equalizer(16)
        rep = collapse_linear(eq)
        assert rep is not None
        assert rep.pop == 1 and rep.push == 1
