"""Tests for the whole-graph static analysis (:mod:`repro.analysis.graph`).

Covers the three certified artifacts end to end:

* shared-state race detection (SL401/SL402) and the partition fixup that
  co-locates racy filters and portal endpoints on one worker;
* ring-capacity proofs — the parallel engine allocates exactly the proved
  capacity under ``REPRO_RING_SLACK=0`` and still produces bit-identical
  output;
* certified cross-splitjoin fusion regions — detection on hand-built
  graphs, rejection of uncertifiable shapes, and bit-exact codegen fusion
  with the region visible in the emitted module's meta.
"""

from __future__ import annotations

import warnings

import pytest

from repro.analysis.graph import (
    analyze_flat_graph,
    certified_fusion_regions,
    graph_report,
    portal_links,
    ring_capacity_proofs,
    shared_state_groups,
)
from repro.apps import fmradio, freqhop
from repro.errors import EngineDowngradeWarning
from repro.graph import ArraySource, CollectSink, Filter, Pipeline, validate
from repro.graph.composites import FeedbackLoop, SplitJoin
from repro.graph.flatgraph import flatten
from repro.graph.splitjoin import combine, duplicate, joiner_roundrobin, roundrobin
from repro.mapping.strategies import partition_nodes
from repro.runtime import Interpreter
from repro.scheduling.steady import build_schedule
from tests.helpers import FIR, Accumulator, Gain


class SharedWriter(Filter):
    """Mutates a list it may share with other filter instances."""

    def __init__(self, buf, name=None):
        super().__init__(pop=1, push=1, name=name)
        self.buf = buf

    def work(self):
        x = self.pop()
        self.buf[0] = x
        self.push(x)


class SharedReader(Filter):
    """Reads (never mutates) a possibly-shared list."""

    def __init__(self, buf, name=None):
        super().__init__(pop=1, push=1, name=name)
        self.buf = buf

    def work(self):
        self.push(self.pop() + self.buf[0])


def _source(n=32):
    return ArraySource([float(i % 7) for i in range(n)])


# ---------------------------------------------------------------------------
# Shared-state race detection
# ---------------------------------------------------------------------------


class TestSharedState:
    def test_aliased_mutable_with_mutator_is_a_group(self):
        buf = [0.0]
        app = Pipeline(
            _source(), SharedWriter(buf, name="w"), SharedReader(buf, name="r"),
            CollectSink(),
        )
        graph = flatten(app)
        groups = shared_state_groups(graph)
        assert len(groups) == 1
        [group] = groups
        assert {name for name, _attr in group.members} == {"w", "r"}
        assert "w" in group.mutators
        analysis = analyze_flat_graph(graph)
        assert [d.code for d in analysis.bag if d.code == "SL401"]

    def test_distinct_buffers_no_group(self):
        app = Pipeline(
            _source(), SharedWriter([0.0]), SharedReader([0.0]), CollectSink()
        )
        assert shared_state_groups(flatten(app)) == []

    def test_immutable_share_ignored(self):
        coeffs = (0.25, 0.5, 0.25)
        app = Pipeline(_source(), FIR(coeffs), FIR(coeffs), CollectSink())
        assert shared_state_groups(flatten(app)) == []

    def test_partition_colocates_racy_filters(self):
        buf = [0.0]
        app = Pipeline(
            _source(),
            SharedWriter(buf, name="w"),
            Gain(2.0),
            Gain(3.0),
            SharedReader(buf, name="r"),
            CollectSink(),
        )
        graph = flatten(app)
        program = build_schedule(graph)
        for strategy in ("softpipe", "task", "fine_grained"):
            part = partition_nodes(app, graph, program.reps, strategy, 2)
            by_name = {n.name: c for n, c in part.items()}
            assert by_name["w"] == by_name["r"], strategy

    def test_partition_colocates_portal_endpoints(self):
        app = freqhop.build_teleport()
        graph = flatten(app)
        program = build_schedule(graph)
        links = portal_links(graph)
        assert links, "teleport app should expose portal links"
        part = partition_nodes(app, graph, program.reps, "softpipe", 2)
        by_name = {n.name: c for n, c in part.items()}
        for link in links:
            cores = {
                by_name[name]
                for name in (link.sender, *link.receivers)
                if name in by_name
            }
            assert len(cores) == 1, link


# ---------------------------------------------------------------------------
# Certified fusion regions
# ---------------------------------------------------------------------------


def _splitjoin_app(branches, splitter=None, joiner=None):
    sj = SplitJoin(
        splitter if splitter is not None else duplicate(),
        branches,
        joiner if joiner is not None else joiner_roundrobin(),
    )
    return Pipeline(_source(), sj, CollectSink())


class TestFusionRegions:
    def test_duplicate_pure_branches_certified(self):
        app = _splitjoin_app(
            [Pipeline(Gain(2.0), Gain(0.5)), FIR([0.25, 0.5, 0.25])]
        )
        regions = certified_fusion_regions(flatten(app))
        assert len(regions) == 1
        [region] = regions
        assert region.splitter.name.endswith(".split")
        assert region.joiner.name.endswith(".join")
        assert len(region.branches) == 2
        # splitter + 3 branch filters + joiner
        assert len(region.members) == 5

    def test_roundrobin_combine_certified(self):
        app = _splitjoin_app(
            [Gain(2.0), Gain(3.0)],
            splitter=roundrobin(),
            joiner=combine(),
        )
        regions = certified_fusion_regions(flatten(app))
        assert len(regions) == 1

    def test_stateful_branch_rejected(self):
        app = _splitjoin_app([Gain(2.0), Accumulator()])
        assert certified_fusion_regions(flatten(app)) == []

    def test_feedback_loop_rejected(self):
        loop = FeedbackLoop(
            joiner_roundrobin(),
            Gain(0.5),
            roundrobin(),
            Gain(0.25),
            delay=2,
        )
        app = Pipeline(_source(), loop, CollectSink())
        assert certified_fusion_regions(flatten(app)) == []

    def test_codegen_fuses_region_bit_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_REGIONS", "1")

        def build():
            return _splitjoin_app(
                [Pipeline(Gain(2.0), FIR([0.5, 0.5])), Gain(-1.0)]
            )

        ref_app = build()
        ref_sink = next(
            f for f in ref_app.filters() if isinstance(f, CollectSink)
        )
        Interpreter(ref_app, engine="scalar").run(4)

        cg_app = build()
        cg_sink = next(f for f in cg_app.filters() if isinstance(f, CollectSink))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(cg_app, engine="codegen")
        interp.run(4)
        assert list(cg_sink.collected) == list(ref_sink.collected)
        report = interp.engine_report()
        blocks = report["codegen"]["blocks"] or []
        region_blocks = [b for b in blocks if b["kind"] == "region"]
        assert region_blocks and region_blocks[0]["mode"] == "inline"
        fused = report["graph_analysis"]["regions_fused"]
        assert len(fused) == 1 and fused[0]["branches"] == 2

    def test_region_fusion_defaults_off(self, monkeypatch):
        # The certificate is sound but the firing-at-a-time region runner
        # loses to the members' vectorized kernels (E15), so fusion must
        # not engage unless explicitly requested.
        monkeypatch.delenv("REPRO_CODEGEN_REGIONS", raising=False)
        app = _splitjoin_app([Gain(2.0), Gain(3.0)])
        sink = next(f for f in app.filters() if isinstance(f, CollectSink))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="codegen")
        interp.run(4)
        report = interp.engine_report()
        blocks = report["codegen"]["blocks"] or []
        assert not [b for b in blocks if b["kind"] == "region"]


# ---------------------------------------------------------------------------
# Ring-capacity proofs
# ---------------------------------------------------------------------------


class TestRingProofs:
    def test_proofs_cover_every_cross_edge(self):
        app = fmradio.build()
        report = graph_report(app, cores=2)
        assert report.proofs, "expected cross-worker edges"
        assert all(p.proved for p in report.proofs)
        assert all(p.capacity >= 1 for p in report.proofs)

    def test_parallel_runs_at_proved_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_RING_SLACK", "0")

        def run(engine):
            app = fmradio.build()
            sink = next(
                f for f in app.filters() if isinstance(f, CollectSink)
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", EngineDowngradeWarning)
                interp = Interpreter(
                    app, engine=engine, strategy="softpipe", cores=2
                )
            try:
                interp.run(6)
            finally:
                interp.close()
            return list(sink.collected), interp

        ref, _ = run("batched")
        out, interp = run("parallel")
        assert out == ref
        session = interp.parallel
        assert session is not None
        proofs = session.ring_proofs
        assert proofs and all(p.proved for p in proofs.values())
        # With zero slack the allocated capacity IS the proved minimum.
        for edge in session.ring_edges:
            assert session.channels[edge].capacity == proofs[edge].capacity

    def test_engine_report_records_proofs(self):
        app = fmradio.build()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                app, engine="parallel", strategy="softpipe", cores=2
            )
        try:
            interp.run(4)
            report = interp.engine_report()
        finally:
            interp.close()
        ga = report.get("graph_analysis")
        assert ga is not None
        assert ga["rings_proved"] > 0
        assert ga["rings"] and all(r["proved"] for r in ga["rings"])
        layout = report["parallel"]
        assert layout["rings_proved"] == ga["rings_proved"]
        assert layout["ring_capacities"]

    def test_proof_object_standalone(self):
        app = fmradio.build()
        graph = flatten(app)
        program = build_schedule(graph)
        part = partition_nodes(app, graph, program.reps, "softpipe", 2)
        used = sorted({c for c in part.values()})
        wid_of = {core: i + 1 for i, core in enumerate(used)}
        node_wid = {n: wid_of.get(part.get(n), 0) for n in graph.nodes}
        proofs = ring_capacity_proofs(program, node_wid, batch_periods=1)
        assert proofs
        for edge, proof in proofs.items():
            assert proof.proved
            assert proof.capacity == max(1, proof.peak_items)
            assert proof.src_wid != proof.dst_wid


# ---------------------------------------------------------------------------
# graph_report / lint surface
# ---------------------------------------------------------------------------


class TestGraphReport:
    def test_payload_shape(self):
        report = graph_report(fmradio.build())
        payload = report.payload()
        for key in (
            "stream",
            "strategy",
            "cores",
            "verified",
            "rings",
            "regions",
            "shared_state",
            "portals",
            "unbounded",
            "summary",
        ):
            assert key in payload, key
        assert payload["verified"] is True
        assert payload["regions"], "fmradio has a certified eq_bank region"
        assert all(r["proved"] for r in payload["rings"])
        assert "partition_error" not in payload

    def test_info_diagnostics_for_proofs_and_regions(self):
        report = graph_report(fmradio.build())
        codes = [d.code for d in report.bag]
        assert "SL404" in codes and "SL405" in codes
        assert not report.bag.errors() and not report.bag.warnings()

    def test_teleport_app_clean_after_colocation(self):
        report = graph_report(freqhop.build_teleport())
        assert not [d for d in report.bag if d.code == "SL403"]
        assert report.analysis.portals
