"""Tests for the static work()-function analysis framework (repro.analysis).

Filters are defined at module level (not in test bodies) so that
``inspect.getsource`` — which every pass relies on — sees real source.
The adversarial section exercises the cases the passes must not be
fooled by: pushes inside ``while`` loops, state writes via ``setattr``,
and ``self`` aliased through helper methods.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    CODES,
    Severity,
    affine_prescreen,
    analyze_filter,
    analyze_stream,
    classify,
    work_effects,
)
from repro.analysis.lint import main as lint_main
from repro.apps import ALL_APPS
from repro.errors import ValidationError
from repro.graph import ArraySource, CollectSink, Filter, Pipeline, validate
from repro.linear.extraction import try_extract
from repro.runtime.messaging import Portal
from tests.helpers import FIR, Gain


def codes_of(filt, refresh=True):
    analysis = analyze_filter(filt, refresh=refresh)
    return analysis, {d.code for d in analysis.diagnostics}


def pipe(filt):
    return Pipeline(ArraySource([float(i) for i in range(16)]), filt, CollectSink())


# ---------------------------------------------------------------------------
# Crafted bad filters: one per diagnostic code.
# ---------------------------------------------------------------------------


class BadPush(Filter):
    """Declares push=2 but only ever pushes one item (SL001)."""

    def __init__(self):
        super().__init__(pop=1, push=2)

    def work(self):
        self.push(self.pop())


class BadPop(Filter):
    """Declares pop=1 but pops two items (SL002)."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        a = self.pop()
        b = self.pop()
        self.push(a + b)


class PeekOOB(Filter):
    """Peeks past the declared window (SL003)."""

    def __init__(self):
        super().__init__(peek=2, pop=1, push=1)

    def work(self):
        self.push(self.peek(0) + self.peek(3))
        self.pop()


class WhilePusher(Filter):
    """Pushes inside a data-dependent while loop (SL005, adversarial)."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        x = self.pop()
        while x > 0.5:
            self.push(x)
            x = x - 1.0


class PeekScanner(Filter):
    """Scans forward with peek() in a data-dependent loop before popping.

    Adversarial for interval widening: the *peek window* is unbounded, but
    the pop/push counts are exactly 1 — the checker must keep the counts
    exact (no SL005/SL001) and report only an unbounded lookahead.
    """

    def __init__(self):
        super().__init__(peek=4, pop=1, push=1)

    def work(self):
        i = 0
        while self.peek(i) < 0.5:
            i = i + 1
        self.push(self.pop())


class OverPeek(Filter):
    """Declares peek=8 but only ever inspects offset 0 (SL007)."""

    def __init__(self):
        super().__init__(peek=8, pop=1, push=1)

    def work(self):
        self.push(self.peek(0) * 2.0)
        self.pop()


class LiarStateless(Filter):
    """Claims stateless=True while mutating an attribute (SL102)."""

    stateless = True

    def __init__(self):
        super().__init__(pop=1, push=1)
        self.n = 0

    def work(self):
        self.n += 1
        self.push(self.pop() + self.n)


class SetattrState(Filter):
    """Writes state through setattr — unbounded write set (SL103)."""

    def __init__(self):
        super().__init__(pop=1, push=1)
        self.x = 0.0

    def work(self):
        setattr(self, "x", self.pop())
        self.push(self.x)


_ESCAPED = []


class EscapingSelf(Filter):
    """Passes self to foreign code — no effect guarantees apply (SL104)."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        _ESCAPED.append(self)
        self.push(self.pop())


class AliasHelperState(Filter):
    """Mutates state through a self-alias inside a helper (adversarial)."""

    def __init__(self):
        super().__init__(pop=1, push=1)
        self.count = 0

    def _bump(self):
        me = self
        me.count += 1

    def work(self):
        self._bump()
        self.push(self.pop() + self.count)


class AliasBufWriter(Filter):
    """Mutates a list through a local alias of a self attribute."""

    def __init__(self):
        super().__init__(pop=1, push=1)
        self.buf = [0.0, 0.0]

    def work(self):
        buf = self.buf
        buf[0] = self.pop()
        self.push(buf[0] + buf[1])


class SuppressedBadPush(BadPush):
    lint_suppress = ("SL001",)


class AttrCaller(Filter):
    """Calls a method on an attribute: send if Portal, mutation otherwise."""

    def __init__(self, target):
        super().__init__(pop=1, push=1)
        self.target = target

    def work(self):
        self.target.append(self.pop())
        self.push(1.0)


class BranchMergeEqual(Filter):
    """Unresolvable branch, but both arms push the same count (exact)."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        x = self.pop()
        if x > 0:
            self.push(x)
        else:
            self.push(-x)


class BranchMergeUnequal(Filter):
    """Arms disagree on push count: declared rate only *possibly* met."""

    def __init__(self):
        super().__init__(pop=1, push=2)

    def work(self):
        x = self.pop()
        if x > 0:
            self.push(x)
            self.push(x)
        else:
            self.push(-x)


class HelperPusher(Filter):
    """Channel ops inside an inlined helper method are still counted."""

    def __init__(self):
        super().__init__(pop=2, push=2)

    def _emit(self, v):
        self.push(v * 2.0)

    def work(self):
        self._emit(self.pop())
        self._emit(self.pop())


# ---------------------------------------------------------------------------
# Effects / purity pass.
# ---------------------------------------------------------------------------


class TestEffects:
    def test_stateless_map(self):
        rep = classify(Gain(2.0))
        assert rep.classification == "stateless"
        assert rep.pure
        assert rep.mutated == ()

    def test_peeking(self):
        rep = classify(FIR([1.0, 2.0, 3.0]))
        assert rep.classification == "peeking"
        assert rep.pure

    def test_aliased_buffer_write_detected(self):
        rep = classify(AliasBufWriter())
        assert rep.classification == "stateful"
        assert "buf" in rep.mutated

    def test_aliased_self_in_helper_detected(self):
        rep = classify(AliasHelperState())
        assert rep.classification == "stateful"
        assert "count" in rep.mutated

    def test_setattr_is_dynamic(self):
        rep = classify(SetattrState())
        assert rep.classification == "stateful"
        assert rep.dynamic

    def test_self_escape_detected(self):
        rep = classify(EscapingSelf())
        assert rep.classification == "stateful"
        assert rep.escapes

    def test_attr_call_resolved_per_instance(self):
        # Same class, same bytecode: a Portal target is a message send,
        # anything else is a conservative mutation.
        sender = classify(AttrCaller(Portal()))
        assert ("target", "append") in sender.message_sends
        assert "target" not in sender.mutated
        mutator = classify(AttrCaller([]))
        assert mutator.classification == "stateful"
        assert "target" in mutator.mutated

    def test_class_level_effects_cached(self):
        assert work_effects(Gain) is work_effects(Gain)


# ---------------------------------------------------------------------------
# Symbolic rate checking.
# ---------------------------------------------------------------------------


class TestRates:
    def test_fir_rates_exact_and_in_bounds(self):
        analysis, codes = codes_of(FIR([0.5] * 4))
        assert analysis.rates.exact
        assert analysis.rates.max_peek == 3
        assert not codes & {"SL001", "SL002", "SL003", "SL005"}

    def test_push_mismatch(self):
        analysis, codes = codes_of(BadPush())
        assert "SL001" in codes
        [diag] = analysis.diagnostics.by_code("SL001")
        assert "push=2" in diag.message and "1 item(s)" in diag.message

    def test_pop_mismatch(self):
        _, codes = codes_of(BadPop())
        assert "SL002" in codes

    def test_peek_out_of_bounds(self):
        analysis, codes = codes_of(PeekOOB())
        assert "SL003" in codes
        assert analysis.rates.peek_violations

    def test_push_inside_while_degrades_not_lies(self):
        # Adversarial: an unbounded data-dependent loop must produce an
        # honest "can't count" warning, never a definite-mismatch error.
        analysis, codes = codes_of(WhilePusher())
        assert "SL005" in codes
        assert "SL001" not in codes and "SL002" not in codes
        assert analysis.rates.dynamic

    def test_peek_scan_before_pop_keeps_counts_exact(self):
        # Regression: the while-loop widener used to treat the peeks as
        # consuming, widening pop to [1, inf) and emitting a false SL005.
        # peek() is non-consuming: counts stay exact, only the lookahead
        # window becomes unbounded (an honest certification blocker).
        import math

        analysis, codes = codes_of(PeekScanner())
        assert analysis.rates.exact
        assert analysis.rates.pop.exact and analysis.rates.pop.hi == 1
        assert analysis.rates.push.exact and analysis.rates.push.hi == 1
        assert not analysis.rates.dynamic
        assert math.isinf(analysis.rates.max_peek)
        assert analysis.rates.cert_blockers
        assert not codes & {"SL001", "SL002", "SL005"}

    def test_over_declared_peek_is_info(self):
        analysis, codes = codes_of(OverPeek())
        assert "SL007" in codes
        [diag] = analysis.diagnostics.by_code("SL007")
        assert diag.severity == Severity.INFO

    def test_branch_merge_equal_counts_exact(self):
        analysis, codes = codes_of(BranchMergeEqual())
        assert analysis.rates.exact
        assert not codes & {"SL001", "SL005"}

    def test_branch_merge_unequal_counts_warns(self):
        _, codes = codes_of(BranchMergeUnequal())
        assert "SL005" in codes
        assert "SL001" not in codes

    def test_helper_channel_ops_counted(self):
        analysis, codes = codes_of(HelperPusher())
        assert analysis.rates.exact
        assert not codes & {"SL001", "SL002", "SL005"}

    def test_missing_work(self):
        _, codes = codes_of(Filter(pop=1, push=1))
        assert "SL006" in codes

    def test_tampered_rate_rejected(self):
        filt = Gain(3.0)
        object.__setattr__(filt.rate, "push", -2)
        _, codes = codes_of(filt)
        assert "SL004" in codes

    def test_peek_below_pop_rejected(self):
        filt = BadPop()
        object.__setattr__(filt.rate, "peek", 0)
        object.__setattr__(filt.rate, "pop", 2)
        analysis, codes = codes_of(filt)
        assert "SL004" in codes
        [diag] = analysis.diagnostics.by_code("SL004")
        assert "peek=0" in diag.message and "pop=2" in diag.message

    def test_analysis_never_mutates_the_instance(self):
        filt = AliasBufWriter()
        analyze_filter(filt, refresh=True)
        assert filt.buf == [0.0, 0.0]

    def test_analysis_never_sends_real_messages(self):
        # An unbound Portal raises MessagingError the moment any message
        # method is invoked, so a clean analysis (no SL005 internal-error
        # degradation) proves the analyzer never called through it.
        analysis, codes = codes_of(AttrCaller(Portal()))
        assert ("target", "append") in analysis.effects.message_sends
        assert "SL005" not in codes


# ---------------------------------------------------------------------------
# Stateful / hidden-state diagnostics.
# ---------------------------------------------------------------------------


class TestEffectsDiagnostics:
    def test_hidden_state_write_is_error(self):
        analysis, codes = codes_of(LiarStateless())
        assert "SL102" in codes
        assert analysis.diagnostics.errors()

    def test_honest_stateful_is_info(self):
        analysis, codes = codes_of(AliasHelperState())
        assert "SL101" in codes and "SL102" not in codes
        assert not analysis.diagnostics.errors()

    def test_setattr_warns(self):
        _, codes = codes_of(SetattrState())
        assert "SL103" in codes

    def test_escape_warns(self):
        _, codes = codes_of(EscapingSelf())
        assert "SL104" in codes


# ---------------------------------------------------------------------------
# Linearity pre-screen + extraction gating.
# ---------------------------------------------------------------------------


class TestLinearityPrescreen:
    def test_fir_is_candidate(self):
        ok, reason = affine_prescreen(FIR([1.0, 2.0]))
        assert ok, reason

    def test_stateful_rejected_with_reason(self):
        ok, reason = affine_prescreen(AliasHelperState())
        assert not ok
        assert "stateful" in reason and "count" in reason

    def test_source_rejected(self):
        ok, reason = affine_prescreen(ArraySource([1.0]))
        assert not ok

    def test_extraction_gated_and_instance_unharmed(self):
        # Regression: before the pre-screen, the extraction interpreter
        # could follow `buf = self.buf` and corrupt the live list.
        filt = AliasBufWriter()
        result = try_extract(filt)
        assert not result.linear
        assert result.stateful
        assert filt.buf == [0.0, 0.0]

    def test_extraction_still_works_for_linear_filters(self):
        result = try_extract(FIR([1.0, 2.0, 3.0]))
        assert result.linear


# ---------------------------------------------------------------------------
# Vectorization-safety proofs.
# ---------------------------------------------------------------------------


class TestVectorSafety:
    def test_map_and_fir_certified(self):
        for filt in (Gain(2.0), FIR([1.0, 0.5])):
            analysis, codes = codes_of(filt)
            assert analysis.certified, analysis.proof.reasons
            assert "SL300" in codes

    def test_data_into_helper_blocks_certification(self):
        # Rates are exact, the filter is pure — but lift_work only swaps
        # math bindings inside work() itself, so stream data reaching a
        # helper must block the trusted path.
        analysis, _ = codes_of(HelperPusher())
        assert not analysis.certified
        assert any("helper" in r for r in analysis.proof.reasons)

    def test_stateful_not_certified(self):
        analysis, codes = codes_of(AliasHelperState())
        assert not analysis.certified
        assert "SL301" in codes
        assert any("mutat" in r or "state" in r for r in analysis.proof.reasons)

    def test_data_dependent_branch_blocks_certification(self):
        # Rates are fine (both arms push once) but the branch picks a
        # different expression per element: not provable column-wise.
        analysis, _ = codes_of(BranchMergeEqual())
        assert not analysis.certified

    def test_dynamic_loop_blocks_certification(self):
        analysis, _ = codes_of(WhilePusher())
        assert not analysis.certified


# ---------------------------------------------------------------------------
# Diagnostics engine: registry, suppression, severities.
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_registry_has_stable_codes(self):
        for code in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006",
                     "SL007", "SL101", "SL102", "SL103", "SL104", "SL201",
                     "SL300", "SL301", "SL302", "SL303"):
            assert code in CODES

    def test_format_mentions_code_and_subject(self):
        analysis, _ = codes_of(BadPush())
        [diag] = analysis.diagnostics.by_code("SL001")
        text = diag.format()
        assert "SL001" in text and "error" in text and "BadPush" in text

    def test_suppression_hides_from_errors(self):
        analysis, codes = codes_of(SuppressedBadPush())
        assert "SL001" in codes  # still recorded...
        assert not analysis.diagnostics.errors()  # ...but not fatal
        [diag] = analysis.diagnostics.by_code("SL001")
        assert diag.suppressed


# ---------------------------------------------------------------------------
# Graph-build integration: validate() runs the analyzer.
# ---------------------------------------------------------------------------


class TestValidateIntegration:
    def test_rate_mismatch_fails_validation(self):
        with pytest.raises(ValidationError, match="static analysis"):
            validate(pipe(BadPush()))

    def test_error_names_instance_and_rates(self):
        with pytest.raises(ValidationError, match=r"push=2.*1 item"):
            validate(pipe(BadPush()))

    def test_peek_oob_fails_validation(self):
        with pytest.raises(ValidationError, match="out of bounds"):
            validate(pipe(PeekOOB()))

    def test_suppressed_error_passes_validation(self):
        validate(pipe(SuppressedBadPush()))

    def test_clean_app_passes(self):
        validate(pipe(FIR([1.0, 2.0])))

    def test_all_apps_lint_clean(self):
        # Suite-wide gate: every shipped app must analyze with zero
        # errors and zero unsuppressed warnings.
        for name, build in sorted(ALL_APPS.items()):
            bag = analyze_stream(build())
            assert not bag.errors(), (name, [d.format() for d in bag.errors()])
            assert not bag.warnings(), (
                name,
                [d.format() for d in bag.warnings()],
            )


# ---------------------------------------------------------------------------
# streamlint CLI.
# ---------------------------------------------------------------------------


_CLEAN_MODULE = """
from repro.graph import ArraySource, CollectSink, Pipeline
from tests.helpers import FIR

def build():
    return Pipeline(ArraySource([1.0] * 8), FIR([1.0, 2.0]), CollectSink())
"""

_BAD_MODULE = """
from repro.graph import ArraySource, CollectSink, Filter, Pipeline

class Wrong(Filter):
    def __init__(self):
        super().__init__(pop=1, push=2)
    def work(self):
        self.push(self.pop())

def build():
    return Pipeline(ArraySource([1.0] * 8), Wrong(), CollectSink())
"""

_WARN_MODULE = """
from repro.graph import ArraySource, CollectSink, Filter, Pipeline

class Draining(Filter):
    def __init__(self):
        super().__init__(pop=1, push=1)
    def work(self):
        x = self.pop()
        while x > 0.5:
            self.push(x)
            x = x - 1.0

def build():
    return Pipeline(ArraySource([1.0] * 8), Draining(), CollectSink())
"""


class TestLintCLI:
    def _write(self, tmp_path, name, body):
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(body))
        return str(path)

    def test_clean_module_exits_zero(self, tmp_path, capsys):
        rc = lint_main([self._write(tmp_path, "cleanapp", _CLEAN_MODULE)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_bad_module_exits_one(self, tmp_path, capsys):
        rc = lint_main([self._write(tmp_path, "brokenapp", _BAD_MODULE)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SL001" in out

    def test_strict_promotes_warnings(self, tmp_path):
        target = self._write(tmp_path, "warnapp", _WARN_MODULE)
        assert lint_main([target]) == 0
        assert lint_main([target, "--strict"]) == 1

    def test_json_report(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        rc = lint_main(
            [self._write(tmp_path, "jsonapp", _BAD_MODULE), "--json", str(report)]
        )
        assert rc == 1
        payload = json.loads(report.read_text())
        assert payload["errors"] == 1
        assert "SL001" in payload["summary"]

    def test_unimportable_target_is_usage_error(self, capsys):
        assert lint_main(["repro.analysis_does_not_exist"]) == 2

    def test_graph_flag_adds_graph_section(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        target = self._write(tmp_path, "graphapp", _CLEAN_MODULE)
        rc = lint_main([target, "--graph", "--json", str(report)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "graph:" in out
        payload = json.loads(report.read_text())
        assert "graph" in payload
        [(label, g)] = payload["graph"].items()
        assert label.endswith(".build")
        for key in ("rings", "regions", "shared_state", "verified"):
            assert key in g, key
        # Without --graph the JSON schema is unchanged.
        rc = lint_main([target, "--json", str(report)])
        assert rc == 0
        assert "graph" not in json.loads(report.read_text())

    def test_graph_flag_clean_on_app_suite_module(self, capsys):
        rc = lint_main(["repro.apps.fmradio", "--graph", "--strict"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "certified region(s)" in out

    def test_app_suite_strict_clean(self, capsys):
        rc = lint_main(["src/repro/apps", "--strict"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 error(s), 0 warning(s)" in out
