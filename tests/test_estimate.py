"""Tests for static work estimation and benchmark characteristics."""

import pytest

from repro.estimate import (
    characterize,
    characteristics_table,
    format_table,
    node_work,
    steady_state_work,
    work_per_firing,
)
from repro.graph import ArraySource, NullSink, Pipeline, flatten
from repro.scheduling import repetitions
from tests.helpers import FIR, Accumulator, Gain, Square


class TestWorkEstimation:
    def test_fir_scales_with_taps(self):
        small = work_per_firing(FIR([1.0] * 4))
        large = work_per_firing(FIR([1.0] * 64))
        assert large > 8 * small

    def test_deterministic(self):
        assert work_per_firing(Gain(2.0)) == work_per_firing(Gain(3.0))

    def test_cache_respects_rate_signature(self):
        # Same class, different loop bounds -> different (cached) costs.
        assert work_per_firing(FIR([1.0] * 8)) != work_per_firing(FIR([1.0] * 32))

    def test_transcendental_costed(self):
        from repro.apps.vocoder import RectToPolar

        assert work_per_firing(RectToPolar()) > work_per_firing(Gain(1.0))

    def test_positive_for_all_app_filters(self):
        from repro.apps import ALL_APPS

        for name, builder in ALL_APPS.items():
            for filt in builder().filters():
                assert work_per_firing(filt) >= 1.0, (name, filt.name)

    def test_router_work_proportional_to_items(self):
        from repro.graph import Identity, SplitJoin, duplicate, joiner_roundrobin

        app = Pipeline(
            ArraySource([1.0]),
            SplitJoin(duplicate(), [Identity(), Identity()], joiner_roundrobin()),
            NullSink(),
        )
        graph = flatten(app)
        joiner = next(n for n in graph.nodes if n.kind == "joiner")
        splitter = next(n for n in graph.nodes if n.kind == "splitter")
        assert node_work(joiner) == 4  # 2 in + 2 out
        assert node_work(splitter) == 3  # 1 in + 2 out

    def test_steady_state_work(self):
        app = Pipeline(ArraySource([1.0]), Gain(1.0), NullSink())
        graph = flatten(app)
        reps = repetitions(graph)
        work = steady_state_work(graph, reps)
        assert all(v >= 1 for v in work.values())


class TestCharacteristics:
    def test_fir_app_row(self):
        from repro.apps import fir

        row = characterize("FIR", fir.build())
        assert row.filters == 3  # source, fir, sink
        assert row.peeking == 1
        assert row.stateful == 0
        assert row.shortest_path == row.longest_path == 3

    def test_stateful_accounting_excludes_io(self):
        from repro.apps import radar

        row = characterize("Radar", radar.build())
        assert row.stateful > 0
        assert 0 < row.stateful_work_pct <= 100

    def test_table_sorted_by_stateful_work(self):
        from repro.apps import EVALUATION_SUITE

        rows = characteristics_table(
            {k: EVALUATION_SUITE[k] for k in ("FIR" if False else "DCT", "Radar", "Vocoder")}
        )
        pcts = [r.stateful_work_pct for r in rows]
        assert pcts == sorted(pcts)

    def test_format_table_renders_all_rows(self):
        from repro.apps import dct, fft

        rows = characteristics_table({"DCT": dct.build, "FFT": fft.build})
        text = format_table(rows)
        assert "DCT" in text and "FFT" in text
        assert "Comp/Comm" in text

    def test_paths_count_filters(self):
        from repro.apps import des

        row = characterize("DES", des.build())
        assert row.longest_path > row.shortest_path  # identity-vs-sbox branches
