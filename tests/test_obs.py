"""Tests for ``repro.obs`` (streamscope): tracer core, engine integration,
exporters, the report/validate CLI, and the lint ``--codes`` registry.

The differential tests assert the observability contract from the issue:
tracing must never change program output (traced and untraced runs are
bit-identical on every engine), the parallel engine's trace carries one
track per worker plus ring stall counters, and teleport send→delivery
records agree with the SDEP wavefront on the frequency-hopping radio.
"""

import json
import warnings

import pytest

from repro.apps import ALL_APPS, freqhop
from repro.errors import EngineDowngradeWarning
from repro.graph.builtins import CollectSink
from repro.obs import (
    CAT_FILTER,
    CAT_KERNEL,
    CAT_FUSED,
    CAT_WORKER,
    NULL_TRACER,
    HwmArrayChannel,
    MemoryTracer,
    NullTracer,
    load_trace,
    trace_summary,
    validate_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.chrome import track_names
from repro.runtime import Interpreter
from repro.runtime.parallel import clear_struct_cache, drain_warm_arenas
from repro.scheduling.sdep import delivery_on_boundary


def _run_traced(builder, engine, periods=8, trace=True, **opts):
    """(collected outputs, interpreter) after a closed run."""
    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine, trace=trace, **opts)
    try:
        interp.run(periods=periods)
    finally:
        interp.close()
    return list(sink.collected), interp


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------


class TestTracerCore:
    def test_null_tracer_is_disabled_and_falsy(self):
        assert NULL_TRACER.enabled is False
        assert not NULL_TRACER
        # Every protocol method is a no-op even when called.
        NULL_TRACER.complete("x", CAT_FILTER, 0.0, 1.0)
        NULL_TRACER.instant("x", CAT_FILTER)
        NULL_TRACER.counter("x", {"v": 1.0})
        NULL_TRACER.name_track(0, "main")
        assert isinstance(NULL_TRACER, NullTracer)

    def test_memory_tracer_records_spans_and_counters(self):
        tracer = MemoryTracer()
        tracer.complete("f", CAT_FILTER, ts=1.0, dur=0.5, args={"firings": 2})
        tracer.instant("hop", "teleport", tid=1)
        tracer.counter("ring:a->b", {"producer_stalls": 3})
        assert len(tracer.events) == 3
        phases = sorted(e["ph"] for e in tracer.events)
        assert phases == ["C", "X", "i"]

    def test_capacity_bounds_memory_and_counts_drops(self):
        tracer = MemoryTracer(capacity=5)
        for i in range(8):
            tracer.complete(f"s{i}", CAT_FILTER, ts=float(i), dur=0.1)
        assert len(tracer.events) == 5
        assert tracer.dropped == 3
        # The oldest events fell off; the newest survive.
        assert [e["name"] for e in tracer.events] == [f"s{i}" for i in range(3, 8)]
        assert tracer.chrome()["repro"]["dropped_events"] == 3

    def test_chrome_export_rebases_and_names_tracks(self):
        tracer = MemoryTracer()
        tracer.name_track(0, "main")
        tracer.complete("f", CAT_FILTER, ts=100.0, dur=0.25, tid=0)
        payload = tracer.chrome()
        assert validate_trace(payload) == []
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "main"
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 0.0  # rebased to the earliest event
        assert span["dur"] == pytest.approx(0.25e6)  # seconds -> microseconds

    def test_metrics_aggregates_self_time_per_filter(self):
        tracer = MemoryTracer()
        for cat in (CAT_FILTER, CAT_KERNEL, CAT_FUSED, CAT_WORKER):
            tracer.complete("f", cat, ts=0.0, dur=1.0, args={"firings": 2, "items": 4})
        tracer.complete("other", "engine", ts=0.0, dur=9.0)  # not self-time
        metrics = tracer.metrics()
        row = metrics["filters"]["f"]
        assert row["self_time"] == pytest.approx(4.0)
        assert row["spans"] == 4
        assert row["firings"] == 8
        assert row["items"] == 16
        assert metrics["workers"][0] == pytest.approx(4.0)

    def test_hwm_channel_tracks_high_water(self):
        chan = HwmArrayChannel(name="c")
        for v in range(5):
            chan.push(float(v))
        chan.pop()
        chan.pop()
        chan.push(9.0)
        assert chan.high_water == 5
        assert len(chan) == 4


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_rejects_non_object_and_missing_events(self):
        assert validate_trace([1, 2]) != []
        assert validate_trace({"no": "traceEvents"}) != []

    def test_rejects_bad_events(self):
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "ts": 0},          # unknown phase
                {"ph": "X", "name": "x", "ts": -1, "dur": 1},  # negative ts
                {"ph": "X", "name": "x", "ts": 0},           # X without dur
                {"ph": "C", "name": "x", "ts": 0},           # C without args
                {"ph": "i", "name": "x", "ts": 0, "tid": "a"},  # non-int tid
            ]
        }
        problems = validate_trace(bad)
        assert len(problems) == 5


class TestTraceCapacity:
    def test_env_capacity_bounds_the_ring(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAP", "10")
        tracer = MemoryTracer()
        assert tracer.capacity == 10
        for i in range(25):
            tracer.instant(f"e{i}", "meta")
        assert len(tracer.events) == 10
        assert tracer.dropped == 15
        # Sliding window: the oldest events fell off the front.
        assert tracer.events[0]["name"] == "e15"
        assert tracer.events[-1]["name"] == "e24"

    def test_explicit_capacity_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAP", "10")
        assert MemoryTracer(capacity=3).capacity == 3

    def test_garbage_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAP", "a lot please")
        assert MemoryTracer().capacity == MemoryTracer.DEFAULT_CAPACITY

    def test_unset_env_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CAP", raising=False)
        assert MemoryTracer().capacity == MemoryTracer.DEFAULT_CAPACITY


# ---------------------------------------------------------------------------
# Engine integration: tracing never changes output
# ---------------------------------------------------------------------------


class TestEngineTracing:
    @pytest.mark.parametrize("engine", ["scalar", "batched", "parallel"])
    def test_traced_output_bit_identical(self, engine):
        opts = {"strategy": "softpipe", "cores": 2} if engine == "parallel" else {}
        plain, _ = _run_traced(ALL_APPS["FilterBank"], engine, trace=None, **opts)
        traced, interp = _run_traced(ALL_APPS["FilterBank"], engine, trace=True, **opts)
        assert traced == plain
        assert interp.tracer.enabled
        assert len(interp.tracer.events) > 0

    def test_scalar_trace_has_filter_spans(self):
        _, interp = _run_traced(ALL_APPS["FMRadio"], "scalar", periods=4)
        cats = {e["cat"] for e in interp.tracer.events if e["ph"] == "X"}
        assert CAT_FILTER in cats

    def test_batched_trace_has_kernel_spans_and_plan_cache(self):
        _, interp = _run_traced(ALL_APPS["FMRadio"], "batched", periods=4)
        cats = {e["cat"] for e in interp.tracer.events if e["ph"] == "X"}
        assert cats & {CAT_KERNEL, CAT_FUSED}
        cache = interp.tracer.meta["plan_cache"]
        assert cache["hits"] + cache["misses"] >= 1

    def test_parallel_trace_has_worker_tracks_and_ring_counters(self):
        _, interp = _run_traced(
            ALL_APPS["FMRadio"], "parallel", periods=12,
            strategy="softpipe", cores=2,
        )
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        payload = interp.tracer.chrome()
        assert validate_trace(payload) == []
        span_tids = {
            e["tid"] for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == CAT_WORKER
        }
        assert len(span_tids) >= 2, "expected spans on >= 2 worker tracks"
        names = track_names(payload)
        assert len(names) >= 2
        assert any("worker" in n for n in names.values())
        ring_counters = {
            e["name"] for e in payload["traceEvents"]
            if e["ph"] == "C" and e["name"].startswith("ring:")
        }
        assert ring_counters, "expected ring stall counter events"
        # Channel snapshot carries ring stall statistics.
        rings = [
            row for row in interp.tracer.meta["channels"].values()
            if row.get("kind") == "ring" and not row.get("detached")
        ]
        assert rings
        assert all("producer_stalls" in row for row in rings)

    def test_trace_path_writes_file_on_close(self, tmp_path):
        path = tmp_path / "fm.trace.json"
        _, interp = _run_traced(ALL_APPS["FMRadio"], "batched", trace=str(path))
        payload = load_trace(path)  # raises on schema violation
        summary = trace_summary(payload)
        assert summary["spans"] > 0
        assert payload["repro"]["meta"]["engine"] == "batched"
        assert payload["repro"]["meta"]["engine_report"]["used"] == "batched"

    @pytest.mark.parametrize("engine", ["scalar", "batched", "parallel"])
    def test_engine_report_shape(self, engine):
        opts = {"strategy": "softpipe", "cores": 2} if engine == "parallel" else {}
        _, interp = _run_traced(ALL_APPS["FilterBank"], engine, trace=None, **opts)
        report = interp.engine_report()
        assert report["requested"] == engine
        assert report["used"] == interp.engine_used
        assert isinstance(report["downgrades"], list)
        for d in report["downgrades"]:
            assert d["code"].startswith("SL3")
        if interp.plan is not None:
            vec = report["vectorization"]
            assert vec and all("kind" in row for row in vec.values())
        if engine == "parallel" and interp.engine_used == "parallel":
            assert "parallel" in report

    def test_vectorization_report_modes(self):
        _, interp = _run_traced(ALL_APPS["FIR"], "batched", trace=None)
        vec = interp.plan.vectorization_report()
        assert vec
        for row in vec.values():
            assert {"kind", "trusted", "code", "reason"} <= set(row)
        # The run resolved executors, so nothing is left untried.
        assert all(row["kind"] != "untried" for row in vec.values())


# ---------------------------------------------------------------------------
# Warm-session reuse: one fork, many traced runs, one coherent trace
# ---------------------------------------------------------------------------


class TestWarmSessionTracing:
    def test_repeated_runs_share_one_fork_and_stay_well_formed(self):
        drain_warm_arenas()
        clear_struct_cache()
        app = ALL_APPS["FMRadio"]()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                app, check=False, engine="parallel",
                strategy="softpipe", cores=2, trace=True,
            )
        if interp.engine_used != "parallel":
            interp.close()
            pytest.skip("degenerate partition on this host")
        try:
            interp.run(periods=4)
            interp.run_steady(4)
            interp.run_steady(4)
            report = interp.parallel.protocol_report()
            payload = interp.tracer.chrome()
        finally:
            interp.close()

        # One fork serves every run on the warm session; each steady run is
        # exactly one protocol command per worker.
        assert report["fork_count"] == 1
        assert report["commands"]["steady"] >= 3

        # The merged trace is schema-valid with per-worker tracks intact.
        assert validate_trace(payload) == []
        span_tids = {
            e["tid"] for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == CAT_WORKER
        }
        assert len(span_tids) >= 2
        names = track_names(payload)
        assert sum("worker" in n for n in names.values()) >= 2

        # Ring counters are cumulative across runs: every series sampled
        # more than once must be monotonically non-decreasing in record
        # order — a reset between warm runs would break the invariant.
        series: dict = {}
        for e in payload["traceEvents"]:
            if e.get("ph") != "C" or not e["name"].startswith("ring:"):
                continue
            for key, value in e["args"].items():
                series.setdefault((e["name"], key), []).append(value)
        assert series, "expected ring counter samples across warm runs"
        multi = {k: v for k, v in series.items() if len(v) >= 2}
        assert multi, "expected repeated samples of at least one ring series"
        for (name, key), values in multi.items():
            assert values == sorted(values), (
                f"{name}.{key} went backwards across warm runs: {values}"
            )


# ---------------------------------------------------------------------------
# Teleport latency vs SDEP
# ---------------------------------------------------------------------------


class TestTeleportTracing:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_freqhop_deliveries_land_on_sdep_boundaries(self, engine):
        _, interp = _run_traced(freqhop.build_teleport, engine, periods=64)
        records = interp.tracer.meta["teleports"]
        delivered = [r for r in records if r["delivered_n"] is not None]
        assert delivered, "expected at least one delivered teleport message"
        for rec in delivered:
            assert rec["sdep_ok"] is True, rec
            # Recompute the boundary check from the raw counters.
            assert delivery_on_boundary(
                rec["threshold"], rec["delivered_n"], rec["push"], rec["direction"]
            )
            if rec["threshold"] is not None and rec["push"]:
                expected = (rec["delivered_n"] - rec["sent_n"]) // rec["push"]
                assert rec["latency_iterations"] == expected


# ---------------------------------------------------------------------------
# CLI: python -m repro.obs {report,validate}
# ---------------------------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "fm.trace.json"
        _run_traced(ALL_APPS["FMRadio"], "batched", trace=str(path))
        return path

    def test_validate_ok(self, trace_file, capsys):
        assert obs_main(["validate", str(trace_file)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_validate_min_tracks_gate(self, trace_file):
        assert obs_main(["validate", str(trace_file), "--min-tracks", "99"]) == 1

    def test_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert obs_main(["validate", str(bad)]) == 1
        schema_bad = tmp_path / "schema.json"
        schema_bad.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert obs_main(["validate", str(schema_bad)]) == 1

    def test_report_renders_table(self, trace_file, capsys):
        assert obs_main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "streamscope report" in out
        assert "self ms" in out
        assert "engine: requested 'batched'" in out

    def test_report_top_limits_rows(self, trace_file, capsys):
        assert obs_main(["report", str(trace_file), "--top", "1"]) == 0


# ---------------------------------------------------------------------------
# Partial traces: report/validate degrade gracefully, never traceback
# ---------------------------------------------------------------------------


class TestPartialTraces:
    def _write(self, tmp_path, payload) -> str:
        path = tmp_path / "partial.json"
        path.write_text(
            payload if isinstance(payload, str) else json.dumps(payload)
        )
        return str(path)

    def test_report_without_repro_metadata_still_renders(self, tmp_path, capsys):
        # A foreign but schema-valid trace: spans only, no "repro" section.
        path = self._write(tmp_path, {
            "traceEvents": [
                {"name": "f", "cat": "filter", "ph": "X",
                 "ts": 0.0, "dur": 5.0, "tid": 0},
                {"name": "mark", "ph": "i", "ts": 1.0, "tid": 0},
            ]
        })
        assert obs_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "streamscope report" in out
        assert "f" in out

    def test_report_tolerates_odd_shaped_metadata(self, tmp_path, capsys):
        # Every metadata section the renderer touches, wrongly shaped or
        # with non-numeric values: the report must still come out.
        path = self._write(tmp_path, {
            "traceEvents": [
                {"name": "f", "cat": "filter", "ph": "X",
                 "ts": 0.0, "dur": 5.0, "tid": 0,
                 "args": {"firings": None, "items": "many"}},
                {"name": "ring:a->b", "ph": "C", "ts": 1.0, "tid": 0,
                 "args": {"producer_stall_s": "abc"}},
            ],
            "repro": {"meta": {
                "channels": "not a dict",
                "teleports": {"not": "a list"},
                "engine_report": ["not", "a", "dict"],
                "plan_cache": 7,
                "codegen_cache": None,
            }},
        })
        assert obs_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "streamscope report" in out
        assert "a->b" in out

    def test_report_truncated_json_is_a_clear_error(self, tmp_path, capsys):
        path = self._write(tmp_path, '{"traceEvents": [{"name": "f", "ph"')
        assert obs_main(["report", path]) == 1
        err = capsys.readouterr().err
        assert "streamscope" in err
        assert "not valid JSON" in err

    def test_report_on_unrenderable_content_exits_one(self, tmp_path, capsys):
        # Schema-valid traceEvents but a "repro" section of the wrong type:
        # deep in the renderer this raises, and the CLI turns it into a
        # one-line diagnosis with exit 1 instead of a traceback.
        path = self._write(tmp_path, {"traceEvents": [], "repro": ["?"]})
        assert obs_main(["report", path]) == 1
        err = capsys.readouterr().err
        assert "cannot build report from this trace" in err
        assert "truncated or from an incompatible producer" in err

    def test_validate_on_malformed_content_exits_one(self, tmp_path, capsys):
        path = self._write(tmp_path, {"traceEvents": [], "repro": ["?"]})
        assert obs_main(["validate", path]) == 1
        assert "malformed trace content" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Lint --codes registry
# ---------------------------------------------------------------------------


class TestLintCodes:
    def test_every_code_has_a_description(self):
        from repro.analysis.diagnostics import CODES, CODE_DESCRIPTIONS

        assert set(CODES) == set(CODE_DESCRIPTIONS)
        assert all(CODE_DESCRIPTIONS[c] for c in CODES)

    def test_codes_flag_lists_registry(self, capsys):
        from repro.analysis.diagnostics import CODES
        from repro.analysis.lint import main as lint_main

        assert lint_main(["--codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out

    def test_targets_required_without_codes(self):
        from repro.analysis.lint import main as lint_main

        with pytest.raises(SystemExit):
            lint_main([])
