"""Tests for deadlock/overflow detection (the paper's verification section)."""

from fractions import Fraction

import pytest

from repro.errors import BufferOverflowError, DeadlockError
from repro.graph import (
    ArraySource,
    CollectSink,
    Duplicator,
    FeedbackLoop,
    Identity,
    NullSink,
    Pipeline,
    SplitJoin,
    duplicate,
    flatten,
    joiner_roundrobin,
    roundrobin,
)
from repro.scheduling import (
    DEADLOCK,
    OK,
    OVERFLOW,
    analyze_feedback_loop,
    splitjoin_drift,
    steady_gain,
    verify_program,
)
from tests.helpers import Downsample2, Gain, Upsample3


def loop_app(join_w, split_w, delay, loopback=None):
    loop = FeedbackLoop(
        joiner_roundrobin(*join_w),
        Identity(),
        roundrobin(*split_w),
        loopback or Identity(),
        delay=delay,
    )
    return Pipeline(ArraySource([1.0]), loop, CollectSink()), loop


class TestSteadyGain:
    def test_filter_gain(self):
        assert steady_gain(Gain(2.0)) == 1
        assert steady_gain(Upsample3()) == 3
        assert steady_gain(Downsample2()) == Fraction(1, 2)

    def test_pipeline_gain_multiplies(self):
        assert steady_gain(Pipeline(Upsample3(), Downsample2())) == Fraction(3, 2)

    def test_balanced_splitjoin(self):
        sj = SplitJoin(duplicate(), [Identity(), Gain(2.0)], joiner_roundrobin())
        assert steady_gain(sj) == 2

    def test_unbalanced_splitjoin_detected(self):
        sj = SplitJoin(duplicate(), [Identity(), Duplicator(2)], joiner_roundrobin())
        with pytest.raises(BufferOverflowError):
            steady_gain(sj)

    def test_starving_loop_detected(self):
        loop = FeedbackLoop(
            joiner_roundrobin(1, 2), Identity(), roundrobin(2, 1), Identity(), delay=4
        )
        with pytest.raises(DeadlockError):
            steady_gain(loop)

    def test_overflowing_loop_detected(self):
        loop = FeedbackLoop(
            joiner_roundrobin(2, 1), Identity(), roundrobin(1, 2), Identity(), delay=4
        )
        with pytest.raises(BufferOverflowError):
            steady_gain(loop)

    def test_healthy_loop_gain(self):
        loop = FeedbackLoop(
            joiner_roundrobin(1, 1), Identity(), roundrobin(1, 1), Identity(), delay=2
        )
        assert steady_gain(loop) == 1


class TestMaxloopAnalysis:
    def test_healthy_loop_verdict(self):
        app, loop = loop_app((1, 1), (1, 1), delay=2)
        verdict = analyze_feedback_loop(flatten(app), loop)
        assert verdict.verdict == OK

    def test_starving_loop_verdict(self):
        app, loop = loop_app((1, 2), (2, 1), delay=4)
        verdict = analyze_feedback_loop(flatten(app), loop)
        assert verdict.verdict == DEADLOCK

    def test_overflow_loop_verdict(self):
        app, loop = loop_app((2, 1), (1, 2), delay=4)
        verdict = analyze_feedback_loop(flatten(app), loop)
        assert verdict.verdict == OVERFLOW


class TestSplitjoinDrift:
    def test_balanced_drift_constant(self):
        sj = SplitJoin(duplicate(), [Identity(), Gain(2.0)], joiner_roundrobin())
        app = Pipeline(ArraySource([1.0]), sj, NullSink())
        graph = flatten(app)
        drifts = [splitjoin_drift(graph, sj, x) for x in (16, 32, 64)]
        assert drifts[0] == drifts[1] == drifts[2]


class TestVerifyProgram:
    def test_all_apps_pass(self):
        from repro.apps import ALL_APPS

        for name, builder in ALL_APPS.items():
            report = verify_program(builder())
            assert report.ok, f"{name}: {report.detail}"

    def test_zero_delay_loop_fails_startup(self):
        app, _ = loop_app((1, 1), (1, 1), delay=0)
        report = verify_program(app)
        assert not report.ok
        assert "deadlock" in report.detail.lower() or "cycle" in report.detail.lower()

    def test_rate_imbalance_reported(self):
        sj = SplitJoin(duplicate(), [Identity(), Duplicator(2)], joiner_roundrobin())
        report = verify_program(Pipeline(ArraySource([1.0]), sj, NullSink()))
        assert not report.ok
        assert "unbalanced" in report.detail or "overflow" in report.detail.lower()

    def test_insufficient_delay_for_peeking_body(self):
        """A rate-balanced loop whose delay cannot prime internal lookahead."""
        from tests.helpers import FIR

        loop = FeedbackLoop(
            joiner_roundrobin(1, 1),
            FIR([1.0, 1.0, 1.0, 1.0, 1.0, 1.0]),  # needs 5 lookahead, 1:1 rates
            roundrobin(1, 1),
            Identity(),
            delay=1,
        )
        app = Pipeline(ArraySource([1.0]), loop, CollectSink())
        report = verify_program(app)
        assert not report.ok
