"""Whole-toolchain integration sweep: every app through every stage.

For each application: validate -> schedule -> verify -> characterize ->
model -> map -> simulate, asserting the cross-stage invariants that tie
the subsystems together.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, EVALUATION_SUITE
from repro.estimate import characterize, steady_state_work
from repro.graph import validate
from repro.machine import ModelGraph, RawMachine, single_core_baseline
from repro.mapping import STRATEGIES
from repro.scheduling import build_schedule, repetitions, verify_program

APPS = sorted(ALL_APPS)


@pytest.mark.parametrize("name", APPS)
def test_toolchain_consistency(name):
    builder = ALL_APPS[name]

    # Validation and scheduling agree on one graph.
    graph = validate(builder())
    program = build_schedule(graph)
    reps = repetitions(graph)
    assert program.reps == reps

    # Steady-state work totals are consistent between the estimator and
    # the machine model built from the same stream.
    work = steady_state_work(graph, reps)
    model = ModelGraph.from_flatgraph(graph, reps)
    assert np.isclose(sum(work.values()), model.total_work())

    # The single-core baseline equals total non-I/O work.
    baseline = single_core_baseline(model)
    non_io = sum(a.work for a in model.compute_actors())
    assert np.isclose(baseline.cycles_per_period, max(non_io, 1.0))

    # Characteristics agree with the model's stateful classification.
    row = characterize(name, builder())
    stateful_actors = [
        a for a in model.compute_actors() if a.stateful and not a.router
    ]
    assert row.stateful == len(stateful_actors)


@pytest.mark.parametrize("name", sorted(EVALUATION_SUITE))
def test_mapping_sanity(name):
    """Every strategy yields a legal mapping whose utilization is sane."""
    machine = RawMachine()
    for strategy in ("task", "data", "combined"):
        result = STRATEGIES[strategy](EVALUATION_SUITE[name](), machine)
        assert 0.0 < result.sim.utilization <= 1.0, (name, strategy)
        assert result.speedup <= machine.n_cores * 1.05, (name, strategy)
        # Every compute actor landed on a real core.
        for actor in result.model.compute_actors():
            assert 0 <= result.assignment[actor] < machine.n_cores


@pytest.mark.parametrize("name", APPS)
def test_verification_clean(name):
    report = verify_program(ALL_APPS[name]())
    assert report.ok, f"{name}: {report.detail}"


def test_suite_totals():
    """The repository ships the paper's full complement of applications."""
    assert len(EVALUATION_SUITE) == 12
    assert len(ALL_APPS) >= 19
