"""Tests for frequency translation and the FLOPs cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StreamItError
from repro.linear import (
    FrequencyFilter,
    LinearFilter,
    LinearRep,
    best_block,
    compare,
    direct_flops_per_firing,
    direct_flops_per_input,
    fir_rep,
    freq_flops_per_input,
    frequency_replace,
)
from repro.linear.costmodel import fft_size
from tests.helpers import run_pipeline

rng = np.random.default_rng(99)


def run_rep_directly(rep, data, periods):
    return run_pipeline(LinearFilter(rep), data=data, periods=periods)


def run_rep_freq(rep, data, periods, block):
    return run_pipeline(FrequencyFilter(rep, block=block), data=data, periods=periods)


class TestFrequencyCorrectness:
    def test_fir_matches_direct(self):
        rep = fir_rep(rng.normal(size=11))
        data = list(rng.normal(size=32))
        direct = run_rep_directly(rep, data, periods=128)
        freq = run_rep_freq(rep, data, periods=8, block=16)
        m = min(len(direct), len(freq))
        assert m >= 128 and np.allclose(direct[:m], freq[:m])

    def test_decimating_multi_output(self):
        rep = LinearRep(rng.normal(size=(3, 8)), rng.normal(size=3), pop=2)
        data = list(rng.normal(size=64))
        direct = run_rep_directly(rep, data, periods=160)
        freq = run_rep_freq(rep, data, periods=20, block=8)
        m = min(len(direct), len(freq))
        assert m > 100 and np.allclose(direct[:m], freq[:m])

    def test_bias_vector_applied(self):
        rep = LinearRep(np.array([[1.0]]), np.array([5.0]), pop=1)
        freq = run_rep_freq(rep, [1.0, 2.0], periods=2, block=4)
        assert np.allclose(freq, [6.0, 7.0] * 4)

    def test_rates_scale_with_block(self):
        rep = fir_rep([1.0] * 5)
        f = FrequencyFilter(rep, block=16)
        assert f.rate.pop == 16
        assert f.rate.push == 16
        assert f.rate.peek == 16 + 4

    def test_block_validation(self):
        with pytest.raises(StreamItError):
            FrequencyFilter(fir_rep([1.0]), block=0)

    def test_default_block_from_cost_model(self):
        rep = fir_rep(rng.normal(size=64))
        f = frequency_replace(rep)
        assert f.block == best_block(rep)

    @settings(max_examples=15, deadline=None)
    @given(
        taps=st.integers(min_value=1, max_value=10),
        block=st.sampled_from([4, 8, 16]),
    )
    def test_freq_equals_direct_property(self, taps, block):
        rep = fir_rep(rng.normal(size=taps))
        data = list(rng.normal(size=24))
        direct = run_rep_directly(rep, data, periods=2 * block)
        freq = run_rep_freq(rep, data, periods=2, block=block)
        m = min(len(direct), len(freq))
        assert np.allclose(direct[:m], freq[:m])


class TestCostModel:
    def test_direct_counts_nonzeros(self):
        rep = fir_rep([1.0, 0.0, 3.0])
        assert direct_flops_per_firing(rep) == 4.0  # 2 muls + 2 adds
        assert direct_flops_per_input(rep) == 4.0

    def test_fft_size_covers_window(self):
        rep = fir_rep([1.0] * 10)
        assert fft_size(rep, 8) >= 8 + 9
        assert fft_size(rep, 8) & (fft_size(rep, 8) - 1) == 0  # power of two

    def test_crossover_with_tap_count(self):
        short = compare(fir_rep([1.0] * 4))
        long = compare(fir_rep([1.0] * 256))
        assert not short.freq_wins
        assert long.freq_wins
        assert long.direct / long.freq > 2.0

    def test_freq_cost_amortizes_with_block(self):
        rep = fir_rep([1.0] * 64)
        assert freq_flops_per_input(rep, 256) < freq_flops_per_input(rep, 8)

    def test_best_block_minimizes(self):
        rep = fir_rep([1.0] * 32)
        block = best_block(rep)
        for candidate in (8, 64, 512):
            assert freq_flops_per_input(rep, block) <= freq_flops_per_input(rep, candidate)

    def test_report_best(self):
        rpt = compare(fir_rep([1.0] * 128))
        assert rpt.best == min(rpt.direct, rpt.freq)
