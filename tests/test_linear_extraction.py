"""Tests for linear extraction (the paper's linear dataflow analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtractionError
from repro.graph import Expander, Filter, Identity
from repro.linear import extract_linear, is_stateful, try_extract
from tests.helpers import (
    FIR,
    Accumulator,
    Butterfly2,
    Downsample2,
    Gain,
    Offset,
    PeekAverage,
    Square,
    Upsample3,
)

# --- analyzable fixture filters (module scope so getsource works) ----------


class ConditionalConst(Filter):
    """Constant-condition branch: analyzable."""

    def __init__(self, flag):
        super().__init__(pop=1, push=1)
        self.flag = flag

    def work(self):
        x = self.pop()
        if self.flag:
            self.push(2.0 * x)
        else:
            self.push(-x)


class DataDependentBranch(Filter):
    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        x = self.pop()
        if x > 0:
            self.push(x)
        else:
            self.push(-x)


class WhileLoop(Filter):
    """Constant-bounded while loop: analyzable."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        x = self.pop()
        total = 0.0
        i = 0
        while i < 4:
            total = total + x
            i = i + 1
        self.push(total)


class LocalListFilter(Filter):
    """Stores affine values in a local list (FFT-butterfly idiom)."""

    def __init__(self):
        super().__init__(pop=2, push=2)

    def work(self):
        vals = [0.0, 0.0]
        vals[0] = self.pop()
        vals[1] = self.pop()
        self.push(vals[0] + vals[1])
        self.push(vals[0] - vals[1])


class ChannelSpelling(Filter):
    """Uses self.input/self.output explicitly like the paper's code."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        self.output.push(self.input.pop() * 3.0)


class DividesByInput(Filter):
    def __init__(self):
        super().__init__(pop=2, push=1)

    def work(self):
        a = self.pop()
        b = self.pop()
        self.push(a / b)


class NumpyCoeffs(Filter):
    """Coefficients held in a numpy array attribute."""

    def __init__(self):
        super().__init__(pop=2, push=1)
        self.h = np.array([2.0, -1.0])

    def work(self):
        total = 0.0
        for i in range(2):
            total += self.peek(i) * self.h[i]
        self.pop()
        self.pop()
        self.push(total)


class RateCheat(Filter):
    """Pops more than declared: a rate-contract violation."""

    def __init__(self):
        super().__init__(pop=1, push=1)

    def work(self):
        self.pop()
        self.pop()
        self.push(0.0)


class TupleAssign(Filter):
    def __init__(self):
        super().__init__(pop=2, push=2)

    def work(self):
        a, b = self.pop(), self.pop()
        self.push(b)
        self.push(a)


class TestExtraction:
    def test_fir(self):
        rep = extract_linear(FIR([1.0, 2.0, 3.0]))
        assert rep is not None
        assert np.allclose(rep.A, [[1.0, 2.0, 3.0]])
        assert rep.pop == 1

    def test_gain_and_offset(self):
        rep = extract_linear(Gain(4.0))
        assert np.allclose(rep.A, [[4.0]]) and rep.b[0] == 0.0
        rep = extract_linear(Offset(7.0))
        assert np.allclose(rep.A, [[1.0]]) and rep.b[0] == 7.0

    def test_identity(self):
        rep = extract_linear(Identity())
        assert np.allclose(rep.A, [[1.0]])

    def test_butterfly(self):
        rep = extract_linear(Butterfly2())
        assert np.allclose(rep.A, [[1.0, 1.0], [1.0, -1.0]])

    def test_expander_and_decimator(self):
        rep = extract_linear(Expander(3))
        assert rep.push == 3 and np.allclose(rep.A[:, 0], [1.0, 0.0, 0.0])
        rep = extract_linear(Downsample2())
        assert rep.pop == 2 and np.allclose(rep.A, [[1.0, 0.0]])

    def test_peeking_window(self):
        rep = extract_linear(PeekAverage())
        assert rep.peek == 4 and rep.pop == 2
        assert np.allclose(rep.A, [[0.25] * 4])

    def test_constant_branch_taken(self):
        assert np.allclose(extract_linear(ConditionalConst(True)).A, [[2.0]])
        assert np.allclose(extract_linear(ConditionalConst(False)).A, [[-1.0]])

    def test_while_loop_unrolled(self):
        assert np.allclose(extract_linear(WhileLoop()).A, [[4.0]])

    def test_local_list_stores(self):
        rep = extract_linear(LocalListFilter())
        assert np.allclose(rep.A, [[1.0, 1.0], [1.0, -1.0]])

    def test_channel_attribute_spelling(self):
        assert np.allclose(extract_linear(ChannelSpelling()).A, [[3.0]])

    def test_numpy_coefficients(self):
        assert np.allclose(extract_linear(NumpyCoeffs()).A, [[2.0, -1.0]])

    def test_tuple_assignment(self):
        rep = extract_linear(TupleAssign())
        assert np.allclose(rep.A, [[0.0, 1.0], [1.0, 0.0]])

    def test_upsampler(self):
        rep = extract_linear(Upsample3())
        assert rep.push == 3


class TestNonLinear:
    def test_square_rejected(self):
        result = try_extract(Square())
        assert not result.linear and not result.stateful
        assert "product" in result.reason

    def test_data_dependent_branch_rejected(self):
        result = try_extract(DataDependentBranch())
        assert not result.linear
        assert "data-dependent" in result.reason

    def test_division_by_input_rejected(self):
        assert not try_extract(DividesByInput()).linear

    def test_stateful_rejected_with_flag(self):
        result = try_extract(Accumulator())
        assert result.stateful and not result.linear

    def test_sources_and_sinks_not_linear(self):
        from repro.graph import ArraySource, NullSink

        assert not try_extract(ArraySource([1.0])).linear
        assert not try_extract(NullSink()).linear


class TestRateContract:
    def test_over_popping_raises(self):
        with pytest.raises(ExtractionError):
            try_extract(RateCheat())


class TestStatefulness:
    def test_stateless_filters(self):
        for f in (FIR([1.0]), Gain(1.0), Square(), Butterfly2(), PeekAverage()):
            assert not is_stateful(f)

    def test_stateful_filters(self):
        assert is_stateful(Accumulator())

    def test_app_state_classification(self):
        from repro.apps.radar import BeamFirFilter, MagnitudeDetector
        from repro.apps.vocoder import PhaseUnwrap
        from repro.apps.freqhop import RFtoIF

        assert is_stateful(BeamFirFilter([1.0, 2.0], 1))
        assert is_stateful(MagnitudeDetector())
        assert is_stateful(PhaseUnwrap(1.0))
        assert is_stateful(RFtoIF(8.0))

    def test_apps_stateless_filters(self):
        from repro.apps.fft import CombineDFT, FFTReorderSimple
        from repro.apps.des import SBox, KeyXor

        assert not is_stateful(CombineDFT(4))
        assert not is_stateful(FFTReorderSimple(8))
        assert not is_stateful(SBox(0))
        assert not is_stateful(KeyXor([1, 0, 1]))


class TestExtractionAgainstExecution:
    @settings(max_examples=20, deadline=None)
    @given(
        coeffs=st.lists(
            st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=1, max_size=6
        )
    )
    def test_fir_rep_matches_runtime(self, coeffs):
        """The extracted rep computes exactly what the interpreter does."""
        from tests.helpers import run_pipeline

        rep = extract_linear(FIR(coeffs))
        data = [1.0, -2.0, 0.5, 3.0, -1.0, 2.0, 0.25, -0.75]
        periods = 6
        out = run_pipeline(FIR(coeffs), data=data, periods=periods)
        stream = [data[i % len(data)] for i in range(periods + len(coeffs) - 1)]
        expected = rep.apply_stream(stream)
        assert np.allclose(out, expected[: len(out)])
