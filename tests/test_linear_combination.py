"""Tests for linear combination: pipeline and split-join collapse."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StreamItError, ValidationError
from repro.graph.splitjoin import combine as combine_joiner
from repro.graph.splitjoin import duplicate, joiner_roundrobin, roundrobin
from repro.linear import (
    LinearRep,
    combine_pipeline,
    combine_pipeline_all,
    combine_splitjoin,
    fir_rep,
)

rng = np.random.default_rng(20260706)


def rand_rep(peek, pop, push):
    return LinearRep(rng.normal(size=(push, peek)), rng.normal(size=push), pop=pop)


def reference_pipeline(up, down, x):
    return down.apply_stream(up.apply_stream(x))


def rr_split(x, weights):
    total = sum(weights)
    outs = [[] for _ in weights]
    for start in range(0, (len(x) // total) * total, total):
        pos = start
        for i, w in enumerate(weights):
            outs[i].extend(x[pos : pos + w])
            pos += w
    return [np.asarray(o) for o in outs]


def rr_join(streams, weights):
    out = []
    cycle = 0
    while all((cycle + 1) * w <= len(s) for s, w in zip(streams, weights)):
        for s, w in zip(streams, weights):
            out.extend(s[cycle * w : (cycle + 1) * w])
        cycle += 1
    return np.asarray(out)


class TestPipelineCombination:
    def test_fir_cascade_is_convolution(self):
        up = fir_rep([1.0, 2.0])
        down = fir_rep([3.0, 4.0])
        comb = combine_pipeline(up, down)
        # Correlation-form cascade of [1,2] then [3,4].
        assert comb.peek == 3 and comb.pop == 1 and comb.push == 1
        x = rng.normal(size=50)
        assert np.allclose(comb.apply_stream(x)[:40], reference_pipeline(up, down, x)[:40])

    def test_rate_matching(self):
        comb = combine_pipeline(rand_rep(1, 1, 4), rand_rep(3, 3, 2))
        assert comb.pop == 3 and comb.push == 8

    def test_gain_absorbed(self):
        up = LinearRep(np.array([[2.0]]), np.array([1.0]), pop=1)
        down = LinearRep(np.array([[3.0]]), np.array([-1.0]), pop=1)
        comb = combine_pipeline(up, down)
        assert np.allclose(comb.A, [[6.0]])
        assert np.allclose(comb.b, [2.0])  # 3*(2x+1) - 1 = 6x + 2

    @settings(max_examples=30, deadline=None)
    @given(
        peek_e=st.integers(min_value=0, max_value=3),
        pop1=st.integers(min_value=1, max_value=3),
        push1=st.integers(min_value=1, max_value=3),
        peek_e2=st.integers(min_value=0, max_value=3),
        pop2=st.integers(min_value=1, max_value=3),
        push2=st.integers(min_value=1, max_value=3),
    )
    def test_combination_preserves_semantics(self, peek_e, pop1, push1, peek_e2, pop2, push2):
        """Property: the combined rep computes the same output stream as
        the two-stage pipeline, for arbitrary rate pairs."""
        up = rand_rep(pop1 + peek_e, pop1, push1)
        down = rand_rep(pop2 + peek_e2, pop2, push2)
        comb = combine_pipeline(up, down)
        x = rng.normal(size=120)
        ref = reference_pipeline(up, down, x)
        got = comb.apply_stream(x)
        m = min(len(ref), len(got))
        assert m > 0
        assert np.allclose(ref[:m], got[:m], atol=1e-8)

    def test_fold_many(self):
        reps = [fir_rep([1.0, 1.0]) for _ in range(4)]
        comb = combine_pipeline_all(reps)
        assert comb.peek == 5  # binomial window
        assert np.allclose(comb.A, [[1.0, 4.0, 6.0, 4.0, 1.0]])

    def test_empty_fold_rejected(self):
        with pytest.raises(StreamItError):
            combine_pipeline_all([])


class TestSplitJoinCombination:
    def test_duplicate_interleave(self):
        a, b = fir_rep([1.0]), fir_rep([2.0])
        comb = combine_splitjoin([a, b], duplicate(), joiner_roundrobin(1, 1))
        assert comb.pop == 1 and comb.push == 2
        x = np.arange(10, dtype=float)
        got = comb.apply_stream(x)
        assert np.allclose(got[: 6], [0, 0, 1, 2, 2, 4])

    def test_roundrobin_split(self):
        a = rand_rep(2, 2, 1)
        b = rand_rep(1, 1, 2)
        comb = combine_splitjoin([a, b], roundrobin(2, 1), joiner_roundrobin(1, 2))
        x = rng.normal(size=90)
        branches = rr_split(x, (2, 1))
        ref = rr_join([a.apply_stream(branches[0]), b.apply_stream(branches[1])], (1, 2))
        got = comb.apply_stream(x)
        m = min(len(ref), len(got))
        assert m > 5 and np.allclose(ref[:m], got[:m])

    def test_unbalanced_rejected(self):
        a = rand_rep(1, 1, 1)
        b = rand_rep(1, 1, 2)  # produces twice as much from the same input
        with pytest.raises((StreamItError, ValidationError)):
            combine_splitjoin([a, b], duplicate(), joiner_roundrobin(1, 1))

    def test_combine_joiner_unsupported(self):
        with pytest.raises(StreamItError):
            combine_splitjoin([fir_rep([1.0])], duplicate(), combine_joiner())

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=4),
        taps=st.integers(min_value=1, max_value=4),
    )
    def test_duplicate_fir_bank_property(self, n, taps):
        """A duplicate bank of FIRs equals per-branch application joined RR."""
        reps = [fir_rep(rng.normal(size=taps)) for _ in range(n)]
        comb = combine_splitjoin(reps, duplicate(), joiner_roundrobin(*([1] * n)))
        x = rng.normal(size=40)
        outs = [r.apply_stream(x) for r in reps]
        ref = rr_join(outs, [1] * n)
        got = comb.apply_stream(x)
        m = min(len(ref), len(got))
        assert m > 0 and np.allclose(ref[:m], got[:m])


class TestLinearRepAlgebra:
    def test_expand_semantics(self):
        rep = rand_rep(3, 2, 2)
        expanded = rep.expand(3)
        assert expanded.pop == 6 and expanded.push == 6 and expanded.peek == 7
        x = rng.normal(size=31)
        assert np.allclose(rep.apply_stream(x)[:18], expanded.apply_stream(x)[:18])

    def test_expand_one_is_identity(self):
        rep = rand_rep(2, 1, 1)
        assert rep.expand(1) is rep

    def test_equivalent(self):
        rep = rand_rep(2, 1, 1)
        assert rep.equivalent(LinearRep(rep.A.copy(), rep.b.copy(), pop=1))
        assert not rep.equivalent(rand_rep(2, 1, 1))

    def test_shape_validation(self):
        with pytest.raises(StreamItError):
            LinearRep(np.zeros((2, 2)), np.zeros(3), pop=1)
        with pytest.raises(StreamItError):
            LinearRep(np.zeros((1, 1)), np.zeros(1), pop=2)  # pop > peek
        with pytest.raises(StreamItError):
            LinearRep(np.zeros((1, 2)), np.zeros(1), pop=0)

    def test_nnz(self):
        rep = fir_rep([1.0, 0.0, 2.0])
        assert rep.nnz() == 2

    def test_apply_window_shape_checked(self):
        rep = fir_rep([1.0, 2.0])
        with pytest.raises(StreamItError):
            rep.apply([1.0])
