"""Shared test utilities: analyzable filters and run helpers.

Filters used across the test suite live here (in a real module, not a
REPL) so ``inspect.getsource`` works for the linear extraction and work
estimation analyses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph import ArraySource, CollectSink, Filter, Pipeline, Stream
from repro.runtime import Interpreter


class FIR(Filter):
    """Sliding-window FIR: the canonical linear, peeking filter."""

    def __init__(self, coeffs: Sequence[float], name: Optional[str] = None) -> None:
        super().__init__(peek=len(coeffs), pop=1, push=1, name=name)
        self.coeffs = tuple(float(c) for c in coeffs)

    def work(self) -> None:
        total = 0.0
        for i in range(len(self.coeffs)):
            total += self.peek(i) * self.coeffs[i]
        self.pop()
        self.push(total)


class Gain(Filter):
    def __init__(self, k: float, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.k = float(k)

    def work(self) -> None:
        self.push(self.pop() * self.k)


class Offset(Filter):
    """Affine with nonzero b: ``y = x + c``."""

    def __init__(self, c: float) -> None:
        super().__init__(pop=1, push=1)
        self.c = float(c)

    def work(self) -> None:
        self.push(self.pop() + self.c)


class Square(Filter):
    """Nonlinear: ``y = x^2``."""

    def __init__(self) -> None:
        super().__init__(pop=1, push=1)

    def work(self) -> None:
        x = self.pop()
        self.push(x * x)


class Accumulator(Filter):
    """Stateful: running sum."""

    def __init__(self) -> None:
        super().__init__(pop=1, push=1)
        self.total = 0.0

    def init(self) -> None:
        self.total = 0.0

    def work(self) -> None:
        self.total += self.pop()
        self.push(self.total)


class Butterfly2(Filter):
    """pop 2 / push 2 linear: ``(a+b, a-b)``."""

    def __init__(self) -> None:
        super().__init__(pop=2, push=2)

    def work(self) -> None:
        a = self.pop()
        b = self.pop()
        self.push(a + b)
        self.push(a - b)


class Downsample2(Filter):
    def __init__(self) -> None:
        super().__init__(pop=2, push=1)

    def work(self) -> None:
        kept = self.pop()
        self.pop()
        self.push(kept)


class Upsample3(Filter):
    def __init__(self) -> None:
        super().__init__(pop=1, push=3)

    def work(self) -> None:
        x = self.pop()
        self.push(x)
        self.push(0.0)
        self.push(0.0)


class PeekAverage(Filter):
    """Peeking linear filter: mean of a 4-item window, pop 2."""

    def __init__(self) -> None:
        super().__init__(peek=4, pop=2, push=1)

    def work(self) -> None:
        total = 0.0
        for i in range(4):
            total += self.peek(i)
        self.pop()
        self.pop()
        self.push(total / 4.0)


def run_pipeline(*stages, data: Sequence[float], periods: int) -> List[float]:
    """Build source -> stages -> sink, run, and return collected output."""
    sink = CollectSink()
    app = Pipeline(ArraySource(list(data)), *stages, sink)
    Interpreter(app).run(periods=periods)
    return list(sink.collected)


def run_stream(app: Stream, periods: int) -> List[float]:
    """Run a closed app and return its (single) CollectSink's output."""
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    Interpreter(app).run(periods=periods)
    return list(sink.collected)
