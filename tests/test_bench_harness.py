"""Tests for the benchmark harness utilities."""

import math

import pytest

from repro.apps import fir
from repro.bench import (
    geometric_mean,
    measure_throughput,
    normalize_periods,
    render_bars,
)
from repro.linear import apply_combination


class TestGeometricMean:
    def test_basic(self):
        assert math.isclose(geometric_mean([1.0, 4.0]), 2.0)
        assert math.isclose(geometric_mean([3.0]), 3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_insensitive_to_order(self):
        values = [0.5, 2.0, 8.0]
        assert math.isclose(geometric_mean(values), geometric_mean(values[::-1]))


class TestThroughput:
    def test_measures_outputs(self):
        sample = measure_throughput(fir.build, periods=10, warmup_periods=1)
        assert sample.outputs == 10
        assert sample.items_per_second > 0
        assert sample.seconds > 0

    def test_normalize_periods_accounts_for_blocking(self):
        opt_builder = lambda: apply_combination(fir.build())[0]
        periods = normalize_periods(fir.build, opt_builder, 40)
        # The combined FIR keeps pop=1/push=1, so periods stay equal.
        assert periods == 40


class TestRendering:
    def test_render_bars_contains_all(self):
        table = {"AppA": {"task": 1.5, "data": 3.0}, "AppB": {"task": 2.0, "data": 4.0}}
        text = render_bars(table, ["task", "data"], "title")
        assert "title" in text and "AppA" in text and "geomean" in text
        assert "3.00" in text
