"""Tests for channels and the interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    ArraySource,
    CollectSink,
    FeedbackLoop,
    Identity,
    NullSink,
    Pipeline,
    SplitJoin,
    combine,
    duplicate,
    joiner_roundrobin,
    roundrobin,
)
from repro.runtime import Channel, ChannelUnderflow, Interpreter
from tests.helpers import (
    FIR,
    Butterfly2,
    Downsample2,
    Gain,
    PeekAverage,
    Upsample3,
    run_pipeline,
)


class TestChannel:
    def test_fifo_order(self):
        ch = Channel()
        ch.push(1.0)
        ch.push(2.0)
        assert ch.pop() == 1.0
        assert ch.pop() == 2.0

    def test_counters(self):
        ch = Channel(initial=[9.0])
        assert ch.pushed_count == 1 and ch.popped_count == 0
        ch.push(1.0)
        ch.pop()
        assert ch.pushed_count == 2 and ch.popped_count == 1
        assert ch.occupancy == 1

    def test_peek_does_not_consume(self):
        ch = Channel(initial=[1.0, 2.0, 3.0])
        assert ch.peek(1) == 2.0
        assert ch.occupancy == 3
        assert ch.pop() == 1.0

    def test_underflow(self):
        ch = Channel()
        with pytest.raises(ChannelUnderflow):
            ch.pop()
        with pytest.raises(ChannelUnderflow):
            ch.peek(0)

    def test_pop_many_push_many(self):
        ch = Channel()
        ch.push_many([1.0, 2.0, 3.0])
        assert ch.pop_many(2) == [1.0, 2.0]
        with pytest.raises(ChannelUnderflow):
            ch.pop_many(2)

    def test_compaction_preserves_content(self):
        ch = Channel()
        for i in range(20000):
            ch.push(float(i))
            if i % 2:
                ch.pop()
        expected_head = ch.peek(0)
        assert ch.occupancy == 10000
        assert ch.pop() == expected_head

    def test_snapshot(self):
        ch = Channel(initial=[1.0, 2.0])
        ch.pop()
        assert ch.snapshot() == [2.0]


class TestInterpreter:
    def test_fir_convolution(self):
        out = run_pipeline(FIR([0.5, 0.5]), data=[1.0, 3.0, 5.0, 7.0], periods=3)
        assert out == [2.0, 4.0, 6.0]

    def test_multirate_chain(self):
        out = run_pipeline(Upsample3(), Downsample2(), data=[4.0, 8.0], periods=2)
        # per period: 2 inputs -> [4,0,0,8,0,0] -> down2 keeps idx 0,2,4
        assert out == [4.0, 0.0, 0.0, 4.0, 0.0, 0.0]

    def test_splitjoin_duplicate_roundrobin(self):
        sj = SplitJoin(duplicate(), [Gain(1.0), Gain(10.0)], joiner_roundrobin())
        out = run_pipeline(sj, data=[1.0, 2.0], periods=4)
        assert out == [1.0, 10.0, 2.0, 20.0, 1.0, 10.0, 2.0, 20.0]

    def test_weighted_roundrobin_distribution(self):
        sj = SplitJoin(
            roundrobin(2, 1), [Gain(1.0), Gain(-1.0)], joiner_roundrobin(2, 1)
        )
        out = run_pipeline(sj, data=[1.0, 2.0, 3.0], periods=2)
        assert out == [1.0, 2.0, -3.0, 1.0, 2.0, -3.0]

    def test_combine_joiner_default_takes_first(self):
        sj = SplitJoin(duplicate(), [Gain(2.0), Gain(5.0)], combine())
        out = run_pipeline(sj, data=[1.0, 3.0], periods=2)
        assert out == [2.0, 6.0]

    def test_combine_joiner_custom_reducer(self):
        sj = SplitJoin(duplicate(), [Gain(2.0), Gain(5.0)], combine(reducer=sum))
        out = run_pipeline(sj, data=[1.0], periods=2)
        assert out == [7.0, 7.0]

    def test_feedback_accumulator(self):
        # y_n = x_n + y_{n-1}: joiner merges input with the delayed output.
        class AddPair(Butterfly2.__bases__[0]):  # Filter
            def __init__(self):
                super().__init__(pop=2, push=2)

            def work(self):
                x = self.pop()
                acc = self.pop()
                s = x + acc
                self.push(s)
                self.push(s)

        loop = FeedbackLoop(
            joiner_roundrobin(1, 1), AddPair(), roundrobin(1, 1), Identity(), delay=1
        )
        out = run_pipeline(loop, data=[1.0, 2.0, 3.0, 4.0], periods=4)
        assert out == [1.0, 3.0, 6.0, 10.0]

    def test_firings_and_items_pushed(self):
        gain = Gain(1.0)
        sink = CollectSink()
        app = Pipeline(ArraySource([1.0]), gain, sink)
        interp = Interpreter(app)
        interp.run(periods=5)
        assert interp.firings(gain) == 5
        assert interp.items_pushed(gain) == 5

    def test_init_schedule_runs_once(self):
        fir = FIR([1.0, 1.0, 1.0])
        sink = CollectSink()
        app = Pipeline(ArraySource([1.0, 2.0, 3.0]), fir, sink)
        interp = Interpreter(app)
        interp.run_init()
        interp.run_init()  # idempotent
        assert interp.firings(fir) == 0  # init only primes upstream
        interp.run_steady(1)
        assert sink.collected == [6.0]

    def test_peek_average(self):
        out = run_pipeline(PeekAverage(), data=[1.0, 2.0, 3.0, 4.0], periods=2)
        assert out == [2.5, 2.5]

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=8
        ),
        periods=st.integers(min_value=1, max_value=5),
    )
    def test_identity_roundtrip(self, data, periods):
        """Identity chains preserve the cyclic source stream exactly."""
        out = run_pipeline(Identity(), Identity(), data=data, periods=periods)
        expected = [data[i % len(data)] for i in range(periods)]
        assert out == expected

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=4)
    )
    def test_roundrobin_identity_reassembly(self, weights):
        """RR-split into identities then RR-join with the same weights is
        the identity transformation (a core split-join invariant)."""
        n = len(weights)
        total = sum(weights)
        sj = SplitJoin(
            roundrobin(*weights),
            [Identity() for _ in range(n)],
            joiner_roundrobin(*weights),
        )
        data = [float(i) for i in range(total)]
        out = run_pipeline(sj, data=data, periods=3)
        assert out == data * 3
