"""Tests for the machine model and throughput simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from repro.machine import (
    ModelActor,
    ModelEdge,
    ModelGraph,
    RawMachine,
    dag_makespan,
    pipelined_ii,
    single_core_baseline,
)


def chain(works, words=1.0):
    actors = [ModelActor(f"a{i}", w) for i, w in enumerate(works)]
    edges = [
        ModelEdge(actors[i], actors[i + 1], words) for i in range(len(actors) - 1)
    ]
    return ModelGraph(actors, edges), actors


class TestRawMachine:
    def test_grid_topology(self):
        m = RawMachine()
        assert m.side == 4
        assert m.coords(0) == (0, 0)
        assert m.coords(5) == (1, 1)
        assert m.coords(15) == (3, 3)

    def test_xy_routing_hops(self):
        m = RawMachine()
        assert m.hops(0, 0) == 0
        assert m.hops(0, 3) == 3
        assert m.hops(0, 15) == 6
        assert len(m.route(0, 15)) == 6
        assert m.route(7, 7) == []

    def test_route_is_dimension_ordered(self):
        m = RawMachine()
        route = m.route(0, 5)  # (0,0) -> (1,1): +x then +y
        assert route[0][1] == 0  # first step +x
        assert route[1][1] == 2  # then +y

    def test_peak_mflops(self):
        assert RawMachine().peak_mflops == 7200.0


class TestModelGraph:
    def test_from_stream(self):
        from repro.apps import fir

        model = ModelGraph.from_stream(fir.build())
        names = [a.name for a in model.actors]
        assert any("fir" in n for n in names)
        io = [a for a in model.actors if a.io]
        assert len(io) == 2  # source + sink

    def test_contract_internalizes_traffic(self):
        model, (a, b, c) = chain([10, 20, 30])
        fused = model.contract(a, b)
        assert fused.work == 30
        assert len(model.actors) == 2
        assert all(not (e.src is fused and e.dst is fused) for e in model.edges)

    def test_contract_peeking_boundary_is_stateful(self):
        a = ModelActor("a", 5)
        b = ModelActor("b", 5, peeking=True)
        model = ModelGraph([a, b], [ModelEdge(a, b, 1)])
        fused = model.contract(a, b)
        assert fused.stateful

    def test_fiss_splits_work(self):
        model, (a, b, c) = chain([10, 160, 10])
        replicas = model.fiss(b, 4)
        assert len(replicas) == 4
        assert all(r.work == 40 for r in replicas)
        assert any("scatter" in x.name for x in model.actors)
        assert any("gather" in x.name for x in model.actors)

    def test_fiss_peeking_duplicates_input(self):
        a = ModelActor("a", 1)
        b = ModelActor("b", 100, peeking=True)
        c = ModelActor("c", 1)
        model = ModelGraph([a, b, c], [ModelEdge(a, b, 8), ModelEdge(b, c, 8)])
        model.fiss(b, 4)
        replica_in = [e for e in model.edges if "#" in e.dst.name]
        assert all(e.words == 8 for e in replica_in)  # full duplication

    def test_fiss_stateful_rejected(self):
        a = ModelActor("a", 10, stateful=True)
        model = ModelGraph([a], [])
        with pytest.raises(MachineError):
            model.fiss(a, 2)

    def test_topological_detects_cycles(self):
        a, b = ModelActor("a", 1), ModelActor("b", 1)
        model = ModelGraph([a, b], [ModelEdge(a, b, 1), ModelEdge(b, a, 1)])
        with pytest.raises(MachineError):
            model.topological()
        # With a delayed back edge it is fine.
        model2 = ModelGraph(
            [a, b], [ModelEdge(a, b, 1), ModelEdge(b, a, 1, delayed=True)]
        )
        assert len(model2.topological()) == 2


class TestSimulator:
    def test_single_core_baseline_is_total_work(self):
        model, _ = chain([10, 20, 30])
        base = single_core_baseline(model)
        assert base.cycles_per_period == 60

    def test_dag_serial_on_one_core(self):
        model, actors = chain([10, 20, 30])
        result = dag_makespan(model, {a: 0 for a in actors})
        assert result.cycles_per_period == 60  # no comm when co-located

    def test_dag_parallel_chains_overlap_nothing(self):
        # A chain spread over cores cannot beat its critical path.
        model, actors = chain([100, 100, 100], words=1.0)
        spread = dag_makespan(model, {a: i for i, a in enumerate(actors)})
        assert spread.cycles_per_period >= 300

    def test_pipelined_chain_parallelizes(self):
        model, actors = chain([100, 100, 100], words=1.0)
        spread = pipelined_ii(model, {a: i for i, a in enumerate(actors)})
        serial = pipelined_ii(model, {a: 0 for a in actors})
        assert spread.cycles_per_period < serial.cycles_per_period
        assert spread.cycles_per_period >= 100  # bounded by the widest stage

    def test_missing_assignment_rejected(self):
        model, actors = chain([1, 1])
        with pytest.raises(MachineError):
            dag_makespan(model, {actors[0]: 0})
        with pytest.raises(MachineError):
            pipelined_ii(model, {actors[0]: 0, actors[1]: 99})

    def test_utilization_bounded(self):
        model, actors = chain([50, 50])
        result = pipelined_ii(model, {actors[0]: 0, actors[1]: 1})
        assert 0 < result.utilization <= 1

    def test_recurrence_bound_serializes_loops(self):
        # a -> b -> a(delayed): II is bounded by the loop latency even if
        # both actors sit on different cores.
        a, b = ModelActor("a", 40), ModelActor("b", 40)
        model = ModelGraph(
            [a, b], [ModelEdge(a, b, 1), ModelEdge(b, a, 1, delayed=True)]
        )
        result = pipelined_ii(model, {a: 0, b: 1})
        assert result.cycles_per_period >= 80  # both works on the cycle

    def test_no_recurrence_without_loops(self):
        model, actors = chain([40, 40])
        result = pipelined_ii(model, {a: i for i, a in enumerate(actors)})
        assert result.cycles_per_period < 80

    def test_link_contention_bounds_ii(self):
        # Many heavy flows over the same link raise II above core loads.
        hub_src = [ModelActor(f"s{i}", 1) for i in range(4)]
        hub_dst = [ModelActor(f"d{i}", 1) for i in range(4)]
        edges = [ModelEdge(s, d, 100) for s, d in zip(hub_src, hub_dst)]
        model = ModelGraph(hub_src + hub_dst, edges)
        # All flows cross from core 0 to core 3 along the same x-links.
        assignment = {a: 0 for a in hub_src}
        assignment.update({a: 3 for a in hub_dst})
        result = pipelined_ii(model, assignment)
        assert result.cycles_per_period >= 400  # 4 flows x 100 words on a link

    @settings(max_examples=20, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=1, max_value=100), min_size=2, max_size=6)
    )
    def test_pipelined_ii_at_least_max_stage(self, works):
        model, actors = chain(works, words=0.0)
        result = pipelined_ii(model, {a: i % 16 for i, a in enumerate(actors)})
        assert result.cycles_per_period >= max(works) - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=1, max_value=100), min_size=2, max_size=6)
    )
    def test_dag_at_least_critical_path(self, works):
        model, actors = chain(works, words=0.0)
        result = dag_makespan(model, {a: i % 16 for i, a in enumerate(actors)})
        assert result.cycles_per_period >= sum(works) - 1e-6
