"""Tests for the always-on observability layer (PR 10): the metrics
registry, Prometheus round-trip, flight recorder, snapshot publishing and
the ``monitor``/``flight`` CLI, and the parallel-engine stall watchdog.

The contract under test: telemetry is on by default, costs a constant per
*run/command* (never per item), degrades to pure no-ops when disabled, and
a deliberately stalled parallel run produces a watchdog suspicion plus a
flight-recorder tail naming the blocked edge — with no pre-enabled tracer.
"""

import json
import time
import warnings

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.errors import EngineDowngradeWarning, StreamItError
from repro.graph.base import Filter
from repro.graph.builtins import ArraySource, CollectSink, Identity
from repro.graph.composites import Pipeline
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import (
    METRICS,
    MeteredStats,
    MetricsRegistry,
    bucket_exponent,
    obs_dir,
    parse_prometheus,
    prometheus_text,
)
from repro.obs.recorder import (
    FLIGHT,
    FlightRecorder,
    format_flight_event,
    format_flight_tail,
)
from repro.runtime import Interpreter
from repro.runtime.parallel import clear_struct_cache, drain_warm_arenas


def _counter(name, **labels):
    return METRICS.counter(name).labels(**labels).value


def _run_app(name="FMRadio", engine="batched", periods=4, **opts):
    app = ALL_APPS[name]()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine, **opts)
    try:
        interp.run(periods=periods)
    finally:
        interp.close()
    return list(sink.collected), interp


# ---------------------------------------------------------------------------
# Bucketing
# ---------------------------------------------------------------------------


class TestBucketExponent:
    def test_powers_of_two_map_to_their_own_bucket(self):
        assert bucket_exponent(1.0) == 0
        assert bucket_exponent(2.0) == 1
        assert bucket_exponent(1024.0) == 10
        assert bucket_exponent(0.5) == -1

    def test_values_round_up_to_the_covering_bucket(self):
        assert bucket_exponent(3.0) == 2       # 2**2 = 4 >= 3
        assert bucket_exponent(1.0001) == 1
        assert bucket_exponent(0.3) == -1      # 2**-1 = 0.5 >= 0.3

    def test_clamped_at_both_ends(self):
        assert bucket_exponent(0.0) == -24
        assert bucket_exponent(-5.0) == -24
        assert bucket_exponent(1e-30) == -24
        assert bucket_exponent(1e30) == 40


# ---------------------------------------------------------------------------
# Registry core
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram_record_and_snapshot(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("runs", "help text").inc(engine="batched")
        reg.counter("runs").inc(2, engine="batched")
        reg.gauge("depth").set(7, edge="a->b")
        hist = reg.histogram("latency")
        hist.observe(0.5)
        hist.observe(3.0)
        snap = reg.snapshot()
        assert snap["runs"]["type"] == "counter"
        assert snap["runs"]["help"] == "help text"
        assert snap["runs"]["samples"] == [
            {"labels": {"engine": "batched"}, "value": 3.0}
        ]
        assert snap["depth"]["samples"][0]["value"] == 7.0
        [sample] = snap["latency"]["samples"]
        assert sample["count"] == 2
        assert sample["sum"] == 3.5
        # 0.5 -> le="0.5" (2**-1), 3.0 -> le="4" (2**2).
        assert sample["buckets"] == {"0.5": 1, "4": 1}

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("runs").inc()
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["runs"]["samples"] == []
        assert snap["h"]["samples"] == []

    def test_disabled_context_manager_restores(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("runs").labels()
        with reg.disabled():
            c.inc()
            assert not reg.enabled
        assert reg.enabled
        assert c.value == 0.0
        c.inc()
        assert c.value == 1.0

    def test_clear_drops_samples_keeps_families(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("runs").inc(engine="scalar")
        reg.clear()
        assert reg.snapshot()["runs"]["samples"] == []
        reg.counter("runs").inc(engine="scalar")
        assert reg.snapshot()["runs"]["samples"][0]["value"] == 1.0


class TestMeteredStats:
    def test_positive_deltas_mirror_into_family(self):
        reg = MetricsRegistry(enabled=True)
        fam = reg.counter("cache_total")
        stats = MeteredStats(fam, lambda k: {"event": k}, {"hits": 0, "misses": 0})
        stats["hits"] += 1
        stats["hits"] += 1
        stats["misses"] += 1
        assert stats == {"hits": 2, "misses": 1}
        assert fam.labels(event="hits").value == 2.0
        assert fam.labels(event="misses").value == 1.0

    def test_resets_are_not_mirrored(self):
        reg = MetricsRegistry(enabled=True)
        fam = reg.counter("cache_total")
        stats = MeteredStats(fam, lambda k: {"event": k}, {"hits": 0})
        stats["hits"] += 3
        stats["hits"] = 0  # clear_cache(): the dict resets, the counter stays
        stats["hits"] += 1
        assert stats["hits"] == 1
        assert fam.labels(event="hits").value == 4.0


# ---------------------------------------------------------------------------
# Prometheus exposition and its inverse
# ---------------------------------------------------------------------------


class TestPrometheusRoundTrip:
    def _populated(self):
        reg = MetricsRegistry(enabled=True)
        runs = reg.counter("repro_runs_total", "run_steady() calls by engine")
        runs.inc(3, engine="batched")
        runs.inc(1, engine="parallel")
        reg.gauge("repro_ring_occupancy", "items queued").set(5, edge="a->b")
        hist = reg.histogram("repro_run_seconds", "wall-clock per run")
        for v in (0.001, 0.3, 0.3, 7.0):
            hist.observe(v, engine="batched")
        return reg

    def test_text_round_trips_through_parser(self):
        snap = self._populated().snapshot()
        assert parse_prometheus(prometheus_text(snap)) == snap

    def test_histogram_buckets_are_cumulative_in_text(self):
        text = self._populated().prometheus()
        lines = [l for l in text.splitlines() if l.startswith("repro_run_seconds")]
        buckets = [l for l in lines if "_bucket" in l]
        # Cumulative counts must be non-decreasing, ending at +Inf == count.
        counts = [float(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]
        assert counts[-1] == 4
        assert any(l.endswith(" 4") for l in lines if "_count" in l)

    def test_help_and_type_lines_present(self):
        text = self._populated().prometheus()
        assert "# HELP repro_runs_total run_steady() calls by engine" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "# TYPE repro_ring_occupancy gauge" in text
        assert "# TYPE repro_run_seconds histogram" in text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("odd").inc(reason='he said "no"\nthen left')
        snap = reg.snapshot()
        assert parse_prometheus(prometheus_text(snap)) == snap


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_bounds_and_dropped_count(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", n=i)
        assert len(rec.events) == 4
        assert rec.dropped == 6
        assert [e["n"] for e in rec.events] == [6, 7, 8, 9]
        assert rec.payload()["capacity"] == 4
        assert rec.payload()["dropped"] == 6

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_CAP", "7")
        assert FlightRecorder().capacity == 7
        monkeypatch.setenv("REPRO_FLIGHT_CAP", "bogus")
        assert FlightRecorder().capacity == 256

    def test_tail_filters_by_kind(self):
        rec = FlightRecorder(capacity=16)
        rec.record("run_start", periods=2)
        rec.record("ring_stall", edge="a->b")
        rec.record("run_end", periods=2)
        tail = rec.tail(8, kinds=("ring_stall",))
        assert [e["kind"] for e in tail] == ["ring_stall"]
        assert rec.tail(2)[-1]["kind"] == "run_end"

    def test_format_tail_names_fields(self):
        rec = FlightRecorder(capacity=8)
        rec.record("stall_suspected", edge="slow->sink", side="consumer")
        text = format_flight_tail(rec.events)
        assert "flight recorder (last 1 event(s)):" in text
        assert "stall_suspected" in text
        assert "edge=slow->sink" in text
        assert "side=consumer" in text
        line = format_flight_event(rec.events[0])
        assert line.startswith("[")  # [HH:MM:SS.mmm] prefix

    def test_clear_resets(self):
        rec = FlightRecorder(capacity=2)
        for _ in range(5):
            rec.record("x")
        rec.clear()
        assert len(rec.events) == 0
        assert rec.dropped == 0
        assert format_flight_tail(rec.events) == ""


# ---------------------------------------------------------------------------
# Engine integration: the default-on registry fills up from real runs
# ---------------------------------------------------------------------------


class TestInterpreterIntegration:
    def test_batched_run_bumps_counters_and_histograms(self):
        assert METRICS.enabled, "metrics must be on by default in the suite"
        runs0 = _counter("repro_runs_total", engine="batched")
        sessions0 = _counter("repro_sessions_total", engine="batched")
        items0 = _counter("repro_items_total", engine="batched")
        hist = METRICS.histogram("repro_run_seconds").labels(engine="batched")
        count0 = hist.count

        out, interp = _run_app("FMRadio", "batched", periods=4)
        assert out
        assert _counter("repro_sessions_total", engine="batched") == sessions0 + 1
        # run(periods=4) = init + one steady run.
        assert _counter("repro_runs_total", engine="batched") >= runs0 + 1
        assert _counter("repro_items_total", engine="batched") > items0
        assert hist.count >= count0 + 1
        kinds = [e["kind"] for e in FLIGHT.tail(16)]
        assert "engine_selected" in kinds or "run_end" in kinds
        assert "run_end" in kinds

    def test_run_end_flight_event_carries_timing(self):
        _run_app("FIR", "batched", periods=3)
        [end] = FLIGHT.tail(1, kinds=("run_end",))
        assert end["engine"] == "batched"
        assert end["periods"] == 3
        assert end["seconds"] >= 0.0

    def test_downgrade_bumps_code_labelled_counter_and_flight(self):
        before = _counter("repro_engine_downgrades_total", code="SL304")
        app = Pipeline(
            ArraySource([float(v) for v in np.arange(8.0)]),
            Identity(),
            CollectSink(),
        )
        with pytest.warns(EngineDowngradeWarning, match="SL304"):
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=1)
        interp.run(periods=2)
        interp.close()
        assert _counter("repro_engine_downgrades_total", code="SL304") == before + 1
        [event] = FLIGHT.tail(1, kinds=("engine_downgrade",))
        assert event["code"] == "SL304"
        assert event["reason"]

    def test_plan_cache_counters_mirror_stats_dict(self):
        from repro.runtime.plan import plan_cache_stats

        mirrored0 = _counter("repro_plan_cache_total", event="hits") + _counter(
            "repro_plan_cache_total", event="misses"
        )
        _run_app("FIR", "batched", periods=2)
        _run_app("FIR", "batched", periods=2)
        mirrored1 = _counter("repro_plan_cache_total", event="hits") + _counter(
            "repro_plan_cache_total", event="misses"
        )
        assert mirrored1 > mirrored0
        assert plan_cache_stats["hits"] + plan_cache_stats["misses"] >= 1

    def test_disabled_registry_freezes_counters_not_output(self):
        baseline, _ = _run_app("FIR", "batched", periods=3)
        runs0 = _counter("repro_runs_total", engine="batched")
        with METRICS.disabled():
            out, _ = _run_app("FIR", "batched", periods=3)
        assert out == baseline
        assert _counter("repro_runs_total", engine="batched") == runs0

    def test_live_registry_prometheus_parses(self):
        _run_app("FIR", "batched", periods=2)
        text = METRICS.prometheus()
        families = parse_prometheus(text)
        assert "repro_runs_total" in families
        assert families["repro_runs_total"]["type"] == "counter"
        assert "repro_run_seconds" in families
        assert families["repro_run_seconds"]["type"] == "histogram"


# ---------------------------------------------------------------------------
# Publishing and the monitor/flight CLI
# ---------------------------------------------------------------------------


class TestPublishAndCli:
    @pytest.fixture()
    def published(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        _run_app("FIR", "batched", periods=2)
        path = METRICS.publish()
        assert path is not None and path.startswith(str(tmp_path))
        return tmp_path

    def test_obs_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert obs_dir() == str(tmp_path)

    def test_publish_writes_snapshot_with_metrics_and_flight(self, published):
        [snap_file] = list(published.glob("obs-*.json"))
        snap = json.loads(snap_file.read_text())
        assert snap["pid"]
        assert "repro_runs_total" in snap["metrics"]
        assert isinstance(snap["flight"]["events"], list)

    def test_maybe_publish_honours_zero_interval(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_OBS_PUBLISH_S", "0")
        METRICS.counter("repro_test_dirty_total").inc()
        assert METRICS.maybe_publish() is not None
        assert list(tmp_path.glob("obs-*.json"))

    def test_monitor_once_renders_page(self, published, capsys):
        assert obs_main(["monitor", "--once", "--dir", str(published)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs monitor" in out
        assert "repro_runs_total" in out

    def test_monitor_once_json_is_machine_readable(self, published, capsys):
        assert obs_main(["monitor", "--once", "--json", "--dir", str(published)]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "metrics" in snap and "flight" in snap
        assert snap["metrics"]["repro_runs_total"]["type"] == "counter"

    def test_flight_cli_dumps_ring(self, published, capsys):
        assert obs_main(["flight", "--dir", str(published)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder" in out
        assert obs_main(["flight", "--json", "--dir", str(published)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["capacity"] >= 1

    def test_missing_snapshot_exits_one_with_message(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert obs_main(["monitor", "--once", "--dir", str(empty)]) == 1
        assert "no metrics snapshot" in capsys.readouterr().err
        assert obs_main(["flight", "--dir", str(empty)]) == 1
        assert "no snapshot" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Stall watchdog: a deliberately starved parallel run, no tracer pre-armed
# ---------------------------------------------------------------------------


class _NapFilter(Filter):
    """Stalls its consumers once, long past the shortened ring deadline.

    The nap duration mixes in mutated state so the rate analyzer keeps the
    rates provably static (same idiom as the parallel-runtime stall tests).
    """

    def __init__(self, naps: float) -> None:
        super().__init__(pop=1, push=1, name="slow")
        self.naps = naps
        self.count = 0

    def work(self) -> None:
        self.count += 1
        if self.count == 3:
            time.sleep(self.naps + 0.0 * self.count)
        self.push(self.pop())


def _nap_chain():
    data = [float(v) for v in np.arange(16.0)]
    return Pipeline(
        ArraySource(data), Identity(), _NapFilter(3.0), Identity(), CollectSink()
    )


class TestStallWatchdog:
    def test_starved_run_yields_suspicion_and_flight_tail_names_edge(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RING_STALL_S", "0.4")
        monkeypatch.setenv("REPRO_WATCHDOG_S", "0.05")
        drain_warm_arenas()
        clear_struct_cache()
        FLIGHT.clear()
        suspected0 = sum(
            child.value
            for _, child in METRICS.counter(
                "repro_watchdog_stall_suspected_total"
            ).samples()
        )
        app = _nap_chain()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        if interp.engine_used != "parallel":
            interp.close()
            pytest.skip("parallel engine downgraded on this host")
        assert interp.tracer.enabled is False, "no pre-enabled tracer in this test"
        with pytest.raises(StreamItError) as excinfo:
            interp.run(periods=4)
        interp.close()
        message = str(excinfo.value)

        # The watchdog sampled the arena and flagged the frozen ring well
        # before the stall deadline turned it into an error.
        suspicions = [e for e in FLIGHT.events if e["kind"] == "stall_suspected"]
        assert suspicions, "watchdog never suspected the starved ring"
        for event in suspicions:
            assert event["edge"]
            assert event["side"] in ("producer", "consumer")
            assert event["suspect"] in ("starvation", "convoy/backpressure")
            assert event["need"] >= 1
        suspected1 = sum(
            child.value
            for _, child in METRICS.counter(
                "repro_watchdog_stall_suspected_total"
            ).samples()
        )
        assert suspected1 > suspected0

        # The error text carries the flight tail, and the tail names at
        # least one blocked edge — the post-mortem needs no trace file.
        assert "flight recorder" in message
        edges = {e["edge"] for e in suspicions}
        edges |= {
            e.get("edge")
            for e in FLIGHT.events
            if e["kind"] == "ring_stall" and e.get("edge")
        }
        assert any(edge and str(edge) in message for edge in edges)

    def test_watchdog_gauges_update_on_healthy_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_S", "0.02")
        drain_warm_arenas()
        clear_struct_cache()
        ticks_before = METRICS.counter("repro_watchdog_ticks_total").labels().value
        out, interp = _run_app(
            "FMRadio", "parallel", periods=16, strategy="softpipe", cores=2
        )
        if interp.engine_used != "parallel":
            pytest.skip("parallel engine downgraded on this host")
        assert out
        assert interp.parallel._watchdog is None, "watchdog stopped on close"
        ticks_after = METRICS.counter("repro_watchdog_ticks_total").labels().value
        assert ticks_after > ticks_before

    def test_watchdog_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "0")
        drain_warm_arenas()
        clear_struct_cache()
        app = ALL_APPS["FMRadio"]()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                app, check=False, engine="parallel", strategy="softpipe", cores=2
            )
        try:
            if interp.engine_used != "parallel":
                pytest.skip("parallel engine downgraded on this host")
            assert interp.parallel._watchdog is None
            interp.run(periods=4)
        finally:
            interp.close()
