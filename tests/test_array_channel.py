"""Edge cases every channel kind must satisfy.

Parametrized over the list-based ``Channel`` and the numpy ``ArrayChannel``
so the batched engine's tape honors exactly the contract the scalar
interpreter relies on: FIFO order, history counters, underflow errors, and
behavior across internal compaction/slide boundaries.
"""

import numpy as np
import pytest

from repro.runtime.array_channel import ArrayChannel
from repro.runtime.channel import _COMPACT_THRESHOLD, Channel, ChannelUnderflow

CHANNEL_KINDS = [Channel, ArrayChannel]


def _invariant(chan) -> None:
    assert chan.pushed_count - chan.popped_count == chan.occupancy


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_fifo_order_and_counters(cls):
    chan = cls(name="t")
    chan.push(1.0)
    chan.push_many([2.0, 3.0, 4.0])
    _invariant(chan)
    assert chan.pop() == 1.0
    assert chan.peek(0) == 2.0
    assert chan.peek(2) == 4.0
    assert chan.pop_many(2) == [2.0, 3.0]
    _invariant(chan)
    assert chan.snapshot() == [4.0]
    assert len(chan) == 1


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_initial_items_count_as_pushed(cls):
    chan = cls(name="delay", initial=[9.0, 8.0])
    assert chan.pushed_count == 2
    assert chan.popped_count == 0
    assert chan.occupancy == 2
    assert chan.pop() == 9.0
    _invariant(chan)


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_push_many_accepts_generator(cls):
    chan = cls(name="gen")
    chan.push_many(float(i) for i in range(10))
    assert chan.pushed_count == 10
    assert chan.pop_many(10) == [float(i) for i in range(10)]
    _invariant(chan)


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_compaction_boundary_preserves_order(cls):
    # Drive the head index through the list Channel's compaction threshold
    # (and the ArrayChannel's slide-to-front) while items remain live.
    n = _COMPACT_THRESHOLD + 64
    chan = cls(name="compact")
    chan.push_many(float(i) for i in range(n))
    popped = [chan.pop() for _ in range(_COMPACT_THRESHOLD + 1)]
    assert popped == [float(i) for i in range(_COMPACT_THRESHOLD + 1)]
    _invariant(chan)
    # The survivors must be intact and in order after any internal move.
    assert chan.peek(0) == float(_COMPACT_THRESHOLD + 1)
    assert chan.snapshot() == [float(i) for i in range(_COMPACT_THRESHOLD + 1, n)]
    chan.push(-1.0)
    assert chan.pop_many(chan.occupancy)[-1] == -1.0
    _invariant(chan)


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_peek_beyond_occupancy_after_pop_many(cls):
    chan = cls(name="under")
    chan.push_many([1.0, 2.0, 3.0, 4.0])
    chan.pop_many(3)
    assert chan.peek(0) == 4.0
    with pytest.raises(ChannelUnderflow):
        chan.peek(1)
    with pytest.raises(ChannelUnderflow):
        chan.pop_many(2)
    with pytest.raises(ChannelUnderflow):
        chan.peek(-1)
    _invariant(chan)


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_pop_from_empty_raises(cls):
    chan = cls(name="empty")
    with pytest.raises(ChannelUnderflow):
        chan.pop()


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_block_roundtrip(cls):
    chan = cls(name="block")
    chan.push_block(np.arange(6.0).reshape(2, 3))  # flattened in C order
    assert chan.pushed_count == 6
    window = chan.peek_block(4)
    assert window.tolist() == [0.0, 1.0, 2.0, 3.0]
    assert chan.occupancy == 6  # peek does not consume
    got = chan.pop_block(2)
    assert got.tolist() == [0.0, 1.0]
    chan.drop(2)
    assert chan.popped_count == 4
    assert chan.pop_block(2).tolist() == [4.0, 5.0]
    _invariant(chan)
    with pytest.raises(ChannelUnderflow):
        chan.peek_block(1)
    with pytest.raises(ChannelUnderflow):
        chan.drop(1)


@pytest.mark.parametrize("cls", CHANNEL_KINDS, ids=lambda c: c.__name__)
def test_block_and_scalar_interleave(cls):
    chan = cls(name="mix")
    total_in = 0.0
    total_out = 0.0
    for round_ in range(50):
        block = np.full(37, float(round_))
        chan.push_block(block)
        total_in += block.sum()
        chan.push(float(round_))
        total_in += round_
        out = chan.pop_block(19)
        total_out += out.sum()
        total_out += chan.pop()
        _invariant(chan)
    total_out += chan.pop_block(chan.occupancy).sum()
    assert total_in == pytest.approx(total_out)
    assert chan.occupancy == 0
    assert chan.pushed_count == chan.popped_count == 50 * 38


def test_array_channel_growth_keeps_views_contiguous():
    # Interleaved pushes/pops force both geometric growth and the
    # slide-to-front path; peek windows must stay contiguous C arrays.
    chan = ArrayChannel(name="grow")
    expect = 0.0
    pushed = 0.0
    for i in range(2000):
        chan.push_block(np.arange(i % 7 + 1, dtype=np.float64))
        if chan.occupancy >= 5:
            window = chan.peek_block(5)
            assert window.flags["C_CONTIGUOUS"]
            chan.drop(3)
    assert chan.pushed_count - chan.popped_count == chan.occupancy
