"""Tests for graph transformations: clone, fusion, fission."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.graph import ArraySource, CollectSink, Identity, Pipeline, validate
from repro.transforms import FusedFilter, PhasedReplica, clone_stream, fiss
from tests.helpers import (
    FIR,
    Accumulator,
    Butterfly2,
    Downsample2,
    Gain,
    Square,
    Upsample3,
    run_pipeline,
)

DATA = [1.0, -2.0, 3.0, 0.5, -1.5, 2.0]


class TestClone:
    def test_clone_has_fresh_uids(self):
        original = Pipeline(Gain(1.0), Gain(2.0))
        cloned = clone_stream(original)
        original_uids = {s.uid for s in original.streams()}
        cloned_uids = {s.uid for s in cloned.streams()}
        assert original_uids.isdisjoint(cloned_uids)

    def test_clone_detaches_parent_and_channels(self):
        inner = Gain(3.0)
        Pipeline(inner)  # attaches a parent
        cloned = clone_stream(inner)
        assert cloned.parent is None
        assert cloned.input is None and cloned.output is None

    def test_clone_and_original_coexist(self):
        gain = Gain(5.0)
        cloned = clone_stream(gain)
        app = Pipeline(ArraySource(DATA), gain, CollectSink())
        app2 = Pipeline(ArraySource(DATA), cloned, CollectSink())
        validate(app)
        validate(app2)

    def test_clone_preserves_state_values(self):
        f = FIR([1.0, 2.0])
        assert clone_stream(f).coeffs == (1.0, 2.0)


class TestFusion:
    def test_fused_equals_pipeline(self):
        base = run_pipeline(FIR([0.5, 0.5]), Downsample2(), data=DATA, periods=40)
        fused = FusedFilter([FIR([0.5, 0.5]), Downsample2()])
        got = run_pipeline(fused, data=DATA, periods=40)
        m = min(len(base), len(got))
        assert m > 20 and np.allclose(base[:m], got[:m])

    def test_fused_rates(self):
        fused = FusedFilter([Upsample3(), Downsample2()])
        # up fires 2, down fires 3 per fused firing: pop 2, push 3.
        assert fused.rate.pop == 2 and fused.rate.push == 3
        assert fused.multiplicities == [2, 3]

    def test_first_child_peek_preserved(self):
        fused = FusedFilter([FIR([1.0] * 4), Gain(1.0)])
        assert fused.rate.peek == fused.rate.pop + 3

    def test_interior_peeking_rejected(self):
        with pytest.raises(ValidationError):
            FusedFilter([Gain(1.0), FIR([1.0, 2.0])])

    def test_attached_children_rejected(self):
        g = Gain(1.0)
        Pipeline(g)
        with pytest.raises(ValidationError):
            FusedFilter([g, Gain(2.0)])

    def test_fusing_across_sink_rejected(self):
        from repro.graph import NullSink

        with pytest.raises(ValidationError):
            FusedFilter([NullSink(), Gain(1.0)])

    def test_stateful_children_supported(self):
        base = run_pipeline(Accumulator(), Gain(2.0), data=DATA, periods=12)
        fused = FusedFilter([Accumulator(), Gain(2.0)])
        got = run_pipeline(fused, data=DATA, periods=12)
        assert np.allclose(base, got)

    @settings(max_examples=20, deadline=None)
    @given(periods=st.integers(min_value=1, max_value=12))
    def test_multirate_fusion_property(self, periods):
        base = run_pipeline(Butterfly2(), Downsample2(), data=DATA, periods=periods)
        fused = FusedFilter([Butterfly2(), Downsample2()])
        got = run_pipeline(fused, data=DATA, periods=periods)
        assert np.allclose(base, got)


class TestFission:
    def test_roundrobin_fission(self):
        base = run_pipeline(Downsample2(), data=DATA, periods=24)
        got = run_pipeline(fiss(Downsample2(), 3), data=DATA, periods=8)
        m = min(len(base), len(got))
        assert m > 10 and np.allclose(base[:m], got[:m])

    def test_peeking_fission_duplicates(self):
        base = run_pipeline(FIR([0.25, 0.5, 0.25]), data=DATA, periods=48)
        sj = fiss(FIR([0.25, 0.5, 0.25]), 4)
        got = run_pipeline(sj, data=DATA, periods=12)
        m = min(len(base), len(got))
        assert m > 20 and np.allclose(base[:m], got[:m])
        assert sj.splitter.kind == "duplicate"
        assert all(isinstance(c, PhasedReplica) for c in sj.children())

    def test_nonpeeking_uses_roundrobin(self):
        sj = fiss(Butterfly2(), 2)
        assert sj.splitter.kind == "roundrobin"

    def test_stateful_rejected(self):
        with pytest.raises(ValidationError):
            fiss(Accumulator(), 2)

    def test_source_rejected(self):
        with pytest.raises(ValidationError):
            fiss(ArraySource([1.0]), 2)

    def test_k_below_two_rejected(self):
        with pytest.raises(ValidationError):
            fiss(Gain(1.0), 1)

    def test_nonlinear_stateless_fissable(self):
        base = run_pipeline(Square(), data=DATA, periods=24)
        got = run_pipeline(fiss(Square(), 4), data=DATA, periods=6)
        m = min(len(base), len(got))
        assert np.allclose(base[:m], got[:m])

    @settings(max_examples=15, deadline=None)
    @given(k=st.integers(min_value=2, max_value=5))
    def test_fission_width_property(self, k):
        """Fission preserves the stream for any replica count."""
        base = run_pipeline(Butterfly2(), data=DATA, periods=2 * k * 3)
        got = run_pipeline(fiss(Butterfly2(), k), data=DATA, periods=6)
        m = min(len(base), len(got))
        assert m > 4 and np.allclose(base[:m], got[:m])

    def test_fissed_graph_validates(self):
        app = Pipeline(ArraySource(DATA), fiss(FIR([1.0, 2.0]), 3), CollectSink())
        validate(app)
