"""Tests for partitioning and the six mapping strategies."""

import pytest

from repro.machine import ModelActor, ModelEdge, ModelGraph, RawMachine
from repro.mapping import (
    STRATEGIES,
    coarsen_stateless,
    evaluate_all,
    judicious_fission,
    lpt_assign,
    selective_fusion,
)


def star_model(center_work=100.0, leaf_work=10.0, leaves=4):
    center = ModelActor("center", center_work)
    leafs = [ModelActor(f"leaf{i}", leaf_work) for i in range(leaves)]
    edges = [ModelEdge(center, l, 1.0) for l in leafs]
    return ModelGraph([center] + leafs, edges)


class TestLPT:
    def test_balances_loads(self):
        model = ModelGraph([ModelActor(f"a{i}", 10.0) for i in range(8)], [])
        assignment = lpt_assign(model, 4)
        loads = [0.0] * 4
        for actor, core in assignment.items():
            loads[core] += actor.work
        assert max(loads) == min(loads) == 20.0

    def test_heaviest_first(self):
        big = ModelActor("big", 100.0)
        smalls = [ModelActor(f"s{i}", 1.0) for i in range(4)]
        model = ModelGraph([big] + smalls, [])
        assignment = lpt_assign(model, 2)
        big_core = assignment[big]
        assert all(assignment[s] != big_core for s in smalls)

    def test_io_actors_not_assigned(self):
        io = ModelActor("io", 0.0, io=True)
        a = ModelActor("a", 5.0)
        model = ModelGraph([io, a], [ModelEdge(io, a, 1.0)])
        assignment = lpt_assign(model, 2)
        assert io not in assignment and a in assignment


class TestSelectiveFusion:
    def test_reaches_target(self):
        model, _ = _chain_model(10)
        fused = selective_fusion(model, 4)
        assert len(fused.compute_actors()) <= 4

    def test_fuses_lightest_pairs_first(self):
        actors = [ModelActor(f"a{i}", w) for i, w in enumerate([100, 1, 1, 100])]
        edges = [ModelEdge(actors[i], actors[i + 1], 1.0) for i in range(3)]
        model = ModelGraph(actors, edges)
        fused = selective_fusion(model, 3)
        names = sorted(a.name for a in fused.actors)
        assert any("a1+a2" in n or "a2+a1" in n for n in names)

    def test_does_not_mutate_input(self):
        model, _ = _chain_model(6)
        before = len(model.actors)
        selective_fusion(model, 2)
        assert len(model.actors) == before

    def test_protect_replicas(self):
        r0 = ModelActor("x#0", 5.0)
        r1 = ModelActor("x#1", 5.0)
        model = ModelGraph([r0, r1], [ModelEdge(r0, r1, 1.0)])
        fused = selective_fusion(model, 1, protect_replicas=True)
        assert len(fused.compute_actors()) == 2

    def test_never_creates_cycle(self):
        # splitter -> (idA, heavy) -> joiner: fusing splitter+joiner around
        # the unfused branch would create a cycle; fusion must avoid it.
        s = ModelActor("s", 1.0)
        a = ModelActor("a", 1.0)
        b = ModelActor("b", 100.0, stateful=True)
        j = ModelActor("j", 1.0)
        model = ModelGraph(
            [s, a, b, j],
            [
                ModelEdge(s, a, 1.0),
                ModelEdge(s, b, 1.0),
                ModelEdge(a, j, 1.0),
                ModelEdge(b, j, 1.0),
            ],
        )
        fused = selective_fusion(model, 2)
        fused.topological()  # raises if a cycle was created


def _chain_model(n):
    actors = [ModelActor(f"a{i}", 10.0) for i in range(n)]
    edges = [ModelEdge(actors[i], actors[i + 1], 1.0) for i in range(n - 1)]
    return ModelGraph(actors, edges), actors


class TestCoarsenAndFiss:
    def test_coarsen_merges_stateless_chain(self):
        model, _ = _chain_model(5)
        coarse = coarsen_stateless(model)
        assert len(coarse.compute_actors()) == 1

    def test_coarsen_stops_at_stateful(self):
        actors = [ModelActor("a", 10.0), ModelActor("b", 10.0, stateful=True), ModelActor("c", 10.0)]
        edges = [ModelEdge(actors[0], actors[1], 1.0), ModelEdge(actors[1], actors[2], 1.0)]
        coarse = coarsen_stateless(ModelGraph(actors, edges))
        assert len(coarse.compute_actors()) == 3

    def test_coarsen_stops_at_peeking(self):
        actors = [ModelActor("a", 10.0), ModelActor("b", 10.0, peeking=True)]
        coarse = coarsen_stateless(
            ModelGraph(actors, [ModelEdge(actors[0], actors[1], 1.0)])
        )
        assert len(coarse.compute_actors()) == 2

    def test_fission_targets_bottleneck(self):
        big = ModelActor("big", 1600.0)
        small = ModelActor("small", 10.0)
        model = ModelGraph([big, small], [ModelEdge(big, small, 1.0)])
        fissed = judicious_fission(model, 16)
        replicas = [a for a in fissed.actors if "#" in a.name]
        assert len(replicas) == 16
        assert all("big" in r.name for r in replicas)

    def test_fission_skips_balanced_actors(self):
        model, _ = _chain_model(16)  # 16 equal actors: no bottleneck
        fissed = judicious_fission(model, 16)
        assert not any("#" in a.name for a in fissed.actors)


class TestStrategies:
    @pytest.mark.parametrize("name", list(STRATEGIES))
    def test_each_strategy_runs(self, name):
        from repro.apps import fmradio

        result = STRATEGIES[name](fmradio.build(), RawMachine())
        assert result.speedup > 0
        assert result.sim.cycles_per_period >= 1
        for actor, core in result.assignment.items():
            assert 0 <= core < 16

    def test_speedup_cannot_exceed_core_count_much(self):
        from repro.apps import dct

        for name in ("task", "data", "softpipe", "combined", "space"):
            result = STRATEGIES[name](dct.build(), RawMachine())
            assert result.speedup <= 16.5, name

    def test_combined_beats_task_on_stateless_app(self):
        from repro.apps import des

        task = STRATEGIES["task"](des.build(), RawMachine())
        combined = STRATEGIES["combined"](des.build(), RawMachine())
        assert combined.speedup > 3 * task.speedup

    def test_evaluate_all_subset(self):
        from repro.apps import fft

        results = evaluate_all(fft.build, strategies=["task", "data"])
        assert set(results) == {"task", "data"}

    def test_dct_bottleneck_fissed(self):
        from repro.apps import dct

        result = STRATEGIES["data"](dct.build(), RawMachine())
        assert any("#" in a.name for a in result.model.actors)
