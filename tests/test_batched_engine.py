"""The batched engine's contract: same outputs as the scalar interpreter.

The equivalence test runs every application in the suite under both engines
and requires *exact* equality — the batched kernels for data movement and
the loop-sequential app filters preserve each firing's floating-point
operation order, so there is no tolerance to hide behind.  ``LinearFilter``
is the one documented exception (GEMM vs GEMV kernel selection inside BLAS)
and is covered by a tight ``allclose`` unit test instead.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.apps.common import FIRFilter
from repro.errors import StreamItError
from repro.graph.builtins import CollectSink
from repro.linear.linrep import LinearFilter, LinearRep
from repro.runtime import ArrayChannel, Channel, Interpreter, compile_and_run


def _run(builder, engine: str, periods: int):
    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    interp = Interpreter(app, check=False, engine=engine)
    interp.run(periods)
    return list(sink.collected), interp


@pytest.mark.parametrize("app_name", sorted(ALL_APPS), ids=str)
def test_batched_matches_scalar_exactly(app_name):
    builder = ALL_APPS[app_name]
    scalar, _ = _run(builder, "scalar", 3)
    batched, interp = _run(builder, "batched", 3)
    assert len(scalar) > 0
    assert batched == scalar  # bit-for-bit, not approximately


@pytest.mark.parametrize("app_name", ["FIR", "FilterBank", "Oversampler", "DToA"])
def test_fired_counts_match_scalar(app_name):
    _, scalar = _run(ALL_APPS[app_name], "scalar", 4)
    _, batched = _run(ALL_APPS[app_name], "batched", 4)
    scalar_counts = sorted((node.name, n) for node, n in scalar.fired.items())
    batched_counts = sorted((node.name, n) for node, n in batched.fired.items())
    assert batched_counts == scalar_counts


def test_superbatch_equals_per_period_execution():
    builder = ALL_APPS["FilterBank"]
    reference, ref_interp = _run(builder, "batched", 7)
    assert ref_interp.plan is not None and ref_interp.plan.superbatch

    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    interp = Interpreter(app, check=False, engine="batched")
    interp.plan.superbatch = False  # force period-at-a-time batching
    interp.run(7)
    assert list(sink.collected) == reference


def test_chunked_superbatch_equals_unchunked():
    builder = ALL_APPS["Oversampler"]
    reference, _ = _run(builder, "batched", 9)
    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    interp = Interpreter(app, check=False, engine="batched")
    interp.plan.chunk_periods = 2  # force several chunks over 9 periods
    interp.run(9)
    assert list(sink.collected) == reference


def test_messaging_app_runs_batched():
    builder = ALL_APPS["FreqHopRadio"]
    scalar, _ = _run(builder, "scalar", 6)
    batched, interp = _run(builder, "batched", 6)
    assert interp.has_messaging
    assert interp.plan is not None  # portals no longer force the scalar path
    assert interp.engine_used == "batched"
    assert not interp.plan.superbatch  # delivery points bound each period
    assert isinstance(next(iter(interp.channels.values())), ArrayChannel)
    assert batched == scalar


def test_unknown_engine_rejected():
    with pytest.raises(StreamItError):
        Interpreter(ALL_APPS["FIR"](), engine="vectorized")


def test_compile_and_run_returns_finished_interpreter():
    app = ALL_APPS["FIR"]()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    interp = compile_and_run(app, periods=5)
    assert interp.engine == "batched"
    assert interp.plan is not None
    assert len(sink.collected) > 0


# -- work_batch kernel units --------------------------------------------------


def _fresh_io(filt, items):
    filt.input = ArrayChannel(name="in")
    filt.output = ArrayChannel(name="out")
    filt.input.push_block(np.asarray(items, dtype=np.float64))


def test_fir_work_batch_bit_identical():
    rng = np.random.default_rng(7)
    coeffs = rng.standard_normal(9)
    data = rng.standard_normal(64)
    n = 20

    scalar = FIRFilter(coeffs, decimation=2)
    _fresh_io(scalar, data)
    for _ in range(n):
        scalar.work()

    batched = FIRFilter(coeffs, decimation=2)
    _fresh_io(batched, data)
    batched.work_batch(n)

    assert batched.output.snapshot() == scalar.output.snapshot()  # exact
    assert batched.input.popped_count == scalar.input.popped_count


def test_linear_filter_work_batch_allclose():
    rng = np.random.default_rng(11)
    rep = LinearRep(rng.standard_normal((3, 8)), rng.standard_normal(3), pop=2)
    data = rng.standard_normal(80)
    n = 25

    scalar = LinearFilter(rep)
    _fresh_io(scalar, data)
    for _ in range(n):
        scalar.work()

    batched = LinearFilter(rep)
    _fresh_io(batched, data)
    batched.work_batch(n)

    np.testing.assert_allclose(
        batched.output.snapshot(), scalar.output.snapshot(), rtol=1e-13, atol=1e-13
    )
    assert batched.input.popped_count == scalar.input.popped_count


# -- cross-wiring regression --------------------------------------------------


def test_second_interpreter_invalidates_first():
    app = ALL_APPS["FIR"]()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    first = Interpreter(app, check=False)
    first.run(1)
    # Constructing a second interpreter rebinds the shared filters ...
    second = Interpreter(app, check=False, engine="batched")
    # ... so the stale interpreter must refuse to run rather than
    # cross-wire both onto a mix of channel sets.
    with pytest.raises(StreamItError, match="re-bound"):
        first.run_steady(1)
    second.run(1)
    assert len(sink.collected) > 0
