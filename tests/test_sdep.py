"""Tests for information wavefronts: closed forms vs. the oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.graph import (
    ArraySource,
    FeedbackLoop,
    Identity,
    NullSink,
    Pipeline,
    SplitJoin,
    duplicate,
    flatten,
    joiner_roundrobin,
    roundrobin,
)
from repro.scheduling import (
    WavefrontOracle,
    filter_tf,
    identity_tf,
    joiner_branch_tf,
    pipeline_tf,
    splitter_branch_tf,
)
from tests.helpers import FIR, Downsample2, Gain, PeekAverage, Upsample3


class MultiRate:
    """Factory for a pop=2 push=3 peek=4 filter defined in helpers-like way."""


class TestClosedForms:
    def test_filter_max_formula(self):
        tf = filter_tf(peek=4, pop=2, push=3)
        # x < peek-pop -> 0 firings possible
        assert tf.max(1) == 0
        # n = floor((x - 2) / 2) firings, each pushing 3
        assert tf.max(2) == 0
        assert tf.max(4) == 3
        assert tf.max(6) == 6
        assert tf.max(7) == 6

    def test_filter_min_formula(self):
        tf = filter_tf(peek=4, pop=2, push=3)
        # ceil(x/3)*2 + 2
        assert tf.min(0) == 0  # operational reading at x=0
        assert tf.min(1) == 4
        assert tf.min(3) == 4
        assert tf.min(4) == 6

    def test_min_max_adjoint(self):
        """min(x) is the least y with max(y) >= x (Galois connection)."""
        tf = filter_tf(peek=5, pop=3, push=2)
        for x in range(1, 30):
            y = tf.min(x)
            assert tf.max(y) >= x
            assert y == 0 or tf.max(y - 1) < x

    def test_identity_composition(self):
        tf = filter_tf(peek=3, pop=1, push=1).then(identity_tf())
        assert tf.max(10) == 8
        assert tf.min(5) == 7

    def test_pipeline_composition_order(self):
        up = filter_tf(peek=1, pop=1, push=2)
        down = filter_tf(peek=3, pop=3, push=1)
        tf = pipeline_tf([up, down])
        # 6 inputs -> 12 intermediates -> 4 outputs
        assert tf.max(6) == 4
        # 1 output needs 3 intermediates needs 2 inputs
        assert tf.min(1) == 2

    def test_splitter_forms(self):
        tf0 = splitter_branch_tf((2, 1), 0)
        assert tf0.max(3) == 2
        assert tf0.max(5) == 2
        assert tf0.min(3) == 6
        dup = splitter_branch_tf((1, 1), 0, duplicate=True)
        assert dup.max(7) == 7 and dup.min(7) == 7

    def test_joiner_forms(self):
        tf0 = joiner_branch_tf((2, 1), 0)
        assert tf0.min(3) == 2
        assert tf0.max(4) == 6

    @settings(max_examples=60, deadline=None)
    @given(
        peek_extra=st.integers(min_value=0, max_value=4),
        pop=st.integers(min_value=1, max_value=4),
        push=st.integers(min_value=1, max_value=4),
        x=st.integers(min_value=0, max_value=60),
    )
    def test_filter_tf_monotone(self, peek_extra, pop, push, x):
        tf = filter_tf(peek=pop + peek_extra, pop=pop, push=push)
        assert tf.max(x) <= tf.max(x + 1)
        assert tf.min(x) <= tf.min(x + 1)


def two_filter_app(up, down):
    return Pipeline(ArraySource([1.0]), up, down, NullSink())


class TestOracle:
    def _graph_and_oracle(self, *stages):
        graph = flatten(Pipeline(ArraySource([1.0]), *stages, NullSink()))
        return graph, WavefrontOracle(graph)

    def test_matches_filter_closed_form(self):
        fir = FIR([1.0, 2.0, 3.0])
        graph, oracle = self._graph_and_oracle(fir, Gain(1.0))
        node = graph.node_for(fir)
        a, b = node.in_edges[0], node.out_edges[0]
        tf = filter_tf(3, 1, 1)
        for x in range(0, 25):
            assert oracle.max_items(a, b, x) == tf.max(x)
        for x in range(1, 25):
            assert oracle.min_items(a, b, x) == tf.min(x)

    def test_matches_pipeline_composition(self):
        up, down = Upsample3(), PeekAverage()
        graph, oracle = self._graph_and_oracle(up, down)
        a = graph.node_for(up).in_edges[0]
        b = graph.node_for(down).out_edges[0]
        tf = pipeline_tf([filter_tf(1, 1, 3), filter_tf(4, 2, 1)])
        for x in range(0, 20):
            assert oracle.max_items(a, b, x) == tf.max(x)
        for x in range(1, 20):
            assert oracle.min_items(a, b, x) == tf.min(x)

    def test_periodic_extrapolation_consistent(self):
        """Large-x queries (cached affine extrapolation) agree with the
        closed form."""
        fir = FIR([0.5] * 4)
        graph, oracle = self._graph_and_oracle(fir, Downsample2())
        a = graph.node_for(fir).in_edges[0]
        b = graph.node_for(fir).out_edges[0]
        tf = filter_tf(4, 1, 1)
        for x in (100, 1000, 12345):
            assert oracle.max_items(a, b, x) == tf.max(x)
            assert oracle.min_items(a, b, x) == tf.min(x)

    def test_not_upstream_raises(self):
        up, down = Gain(1.0), Gain(2.0)
        graph, oracle = self._graph_and_oracle(up, down)
        a = graph.node_for(up).in_edges[0]
        b = graph.node_for(down).out_edges[0]
        with pytest.raises(SchedulingError):
            oracle.max_items(b, a, 5)

    def test_duplicate_splitjoin_wavefront(self):
        sj = SplitJoin(duplicate(), [Identity(), Gain(2.0)], joiner_roundrobin())
        app = Pipeline(ArraySource([1.0]), sj, NullSink())
        graph = flatten(app)
        oracle = WavefrontOracle(graph)
        splitter = next(n for n in graph.nodes if n.kind == "splitter")
        joiner = next(n for n in graph.nodes if n.kind == "joiner")
        a = splitter.in_edges[0]
        b = joiner.out_edges[0]
        # Each input item yields two joined outputs (one per branch).
        assert oracle.max_items(a, b, 5) == 10
        assert oracle.min_items(a, b, 10) == 5

    def test_weighted_roundrobin_wavefront(self):
        """The case the paper leaves open: weighted round-robin nodes."""
        sj = SplitJoin(
            roundrobin(2, 1),
            [Identity(), Identity()],
            joiner_roundrobin(2, 1),
        )
        graph = flatten(Pipeline(ArraySource([1.0]), sj, NullSink()))
        oracle = WavefrontOracle(graph)
        splitter = next(n for n in graph.nodes if n.kind == "splitter")
        joiner = next(n for n in graph.nodes if n.kind == "joiner")
        a, b = splitter.in_edges[0], joiner.out_edges[0]
        assert oracle.max_items(a, b, 6) == 6
        assert oracle.max_items(a, b, 5) == 3  # partial cycle can't join

    def test_feedback_loop_wavefront_includes_delay(self):
        loop = FeedbackLoop(
            joiner_roundrobin(1, 1), Identity(), roundrobin(1, 1), Identity(), delay=2
        )
        graph = flatten(Pipeline(ArraySource([1.0]), loop, NullSink()))
        oracle = WavefrontOracle(graph)
        joiner = next(n for n in graph.nodes if n.kind == "joiner")
        o_fj = joiner.out_edges[0]
        i2 = joiner.in_edges[1]
        # Items on the loopback tape include the 2 delay items.
        around = oracle.max_items(o_fj, i2, 4)
        assert around == 2 + 2  # delay + floor(4/2) routed around

    @settings(max_examples=25, deadline=None)
    @given(
        taps=st.integers(min_value=1, max_value=6),
        x=st.integers(min_value=1, max_value=40),
    )
    def test_oracle_galois_property(self, taps, x):
        """min and max form a Galois connection on any pipeline."""
        fir = FIR([1.0] * taps)
        graph = flatten(Pipeline(ArraySource([1.0]), fir, Downsample2(), NullSink()))
        oracle = WavefrontOracle(graph)
        a = graph.node_for(fir).in_edges[0]
        b = graph.edges[-1]
        y = oracle.min_items(a, b, x)
        assert oracle.max_items(a, b, y) >= x
        if y > 0:
            assert oracle.max_items(a, b, y - 1) < x
