"""Tests for the parallel runtime: ring buffers, worker lifecycle, and
bit-exactness of ``engine="parallel"`` against the batched engine.

The ring tests drive :class:`RingChannel` through its edge cases directly
(wraparound, blocked producer/consumer, abort).  The lifecycle tests assert
the issue's teardown contract: no orphaned worker processes on success, on
an exception inside a worker (error carries the filter's instance name), or
on cancellation mid-session.  The differential tests run real apps under
every mapping strategy and require bit-identical output or a structured
``SL304`` downgrade — never a crash.
"""

import gc
import os
import threading
import time
import warnings

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.errors import EngineDowngradeWarning, StreamItError
from repro.graph.base import Filter
from repro.graph.builtins import ArraySource, CollectSink, Identity
from repro.graph.composites import Pipeline
from repro.mapping.strategies import STRATEGIES
from repro.runtime import Interpreter
from repro.runtime.parallel import clear_struct_cache, drain_warm_arenas
from repro.runtime.ring import RingAbort, RingArena, RingStall

STRATEGY_NAMES = tuple(STRATEGIES)


def _collect(app):
    return next(f for f in app.filters() if isinstance(f, CollectSink))


def _run(builder, engine, periods=6, **opts):
    app = builder()
    sink = _collect(app)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, engine=engine, **opts)
    try:
        interp.run(periods)
    finally:
        interp.close()
    return list(sink.collected), interp


# ---------------------------------------------------------------------------
# Ring buffer edge cases
# ---------------------------------------------------------------------------


class TestRingChannel:
    def test_wraparound_at_capacity(self):
        arena = RingArena([8])
        try:
            ring = arena.ring(0, name="wrap")
            # Fill, drain partially, refill: the second block must wrap.
            ring.push_block(np.arange(6.0))
            assert ring.pop_block(4).tolist() == [0.0, 1.0, 2.0, 3.0]
            ring.push_block(np.arange(10.0, 15.0))  # crosses the end
            assert len(ring) == 7
            assert ring.snapshot() == [4.0, 5.0, 10.0, 11.0, 12.0, 13.0, 14.0]
            # peek_block over the wrapped window copies but stays correct.
            assert ring.peek_block(7).tolist() == ring.snapshot()
            ring.drop(7)
            assert len(ring) == 0
        finally:
            arena.release(unlink=True)

    def test_counters_survive_wraparound(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="count")
            for i in range(25):
                ring.push(float(i))
                assert ring.pop() == float(i)
            assert ring.pushed_count == 25
            assert ring.popped_count == 25
        finally:
            arena.release(unlink=True)

    def test_consumer_blocked_until_producer_pushes(self):
        arena = RingArena([8])
        try:
            ring = arena.ring(0, name="cb", timeout=5.0)

            def produce():
                time.sleep(0.05)
                ring.push_block(np.arange(3.0))

            t = threading.Thread(target=produce)
            t.start()
            # Blocks (the items don't exist yet), then returns them.
            assert ring.pop_block(3).tolist() == [0.0, 1.0, 2.0]
            t.join()
        finally:
            arena.release(unlink=True)

    def test_producer_blocked_until_consumer_pops(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="pb", timeout=5.0)
            ring.push_block(np.arange(4.0))  # full

            def consume():
                time.sleep(0.05)
                ring.drop(3)

            t = threading.Thread(target=consume)
            t.start()
            ring.push_block(np.array([9.0, 10.0]))  # blocks until the drop
            t.join()
            assert ring.snapshot() == [3.0, 9.0, 10.0]
        finally:
            arena.release(unlink=True)

    def test_blocked_wait_times_out_as_stall(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="stall", timeout=0.05)
            with pytest.raises(RingStall):
                ring.pop_block(1)  # nobody will ever push
            ring.push_block(np.arange(4.0))
            with pytest.raises(RingStall):
                ring.push(5.0)  # nobody will ever pop
        finally:
            arena.release(unlink=True)

    def test_abort_unblocks_waiters(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="abort", timeout=30.0)

            def aborter():
                time.sleep(0.05)
                arena.abort()

            t = threading.Thread(target=aborter)
            t.start()
            with pytest.raises(RingAbort):
                ring.pop_block(1)
            t.join()
        finally:
            arena.release(unlink=True)

    def test_oversized_single_push_is_a_planner_bug(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="big")
            with pytest.raises(StreamItError):
                ring.push_block(np.arange(5.0))
        finally:
            arena.release(unlink=True)

    def test_zero_item_operations_are_noops(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="zero")
            ring.push_block(np.empty(0))
            ring.drop(0)
            assert ring.peek_block(0).tolist() == []
            assert len(ring) == 0
        finally:
            arena.release(unlink=True)


# ---------------------------------------------------------------------------
# Worker lifecycle
# ---------------------------------------------------------------------------


class _BombFilter(Filter):
    """Works fine during init, explodes on the Nth steady firing."""

    def __init__(self, fuse: int) -> None:
        super().__init__(pop=1, push=1, name="bomb")
        self.fuse = fuse
        self.count = 0

    def work(self) -> None:
        self.count += 1
        if self.count > self.fuse:
            raise RuntimeError("boom")
        self.push(self.pop() * 2.0)


def _chain_app(middle):
    data = [float(v) for v in np.arange(16.0)]
    return Pipeline(
        ArraySource(data),
        Identity(),
        middle,
        Identity(),
        CollectSink(),
    )


class TestWorkerLifecycle:
    def test_clean_shutdown_on_success(self):
        out, interp = _run(
            lambda: _chain_app(Identity()), "parallel", strategy="softpipe", cores=2
        )
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        assert interp.parallel.alive_workers == 0
        interp.close()  # idempotent
        assert interp.parallel.alive_workers == 0

    def test_worker_exception_propagates_with_filter_name(self):
        app = _chain_app(_BombFilter(fuse=4))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        with pytest.raises(StreamItError, match="bomb"):
            interp.run(periods=64)
        # No orphans: every worker joined during failure teardown.
        assert interp.parallel.alive_workers == 0
        interp.close()
        with pytest.raises(StreamItError, match="closed"):
            interp.run_steady(1)

    def test_worker_error_carries_slice_and_iteration(self):
        # A fuse long enough that the bomb survives init and explodes in
        # steady state, where the command carries slice/iteration context.
        app = _chain_app(_BombFilter(fuse=30))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                app, engine="parallel", strategy="softpipe", cores=2, trace=True
            )
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        with pytest.raises(StreamItError, match="bomb") as excinfo:
            interp.run(periods=100)
        message = str(excinfo.value)
        assert "schedule slice" in message
        assert "steady iteration" in message
        # The traced run records the same context as a worker_error event.
        errors = [
            e for e in interp.tracer.events if e.get("name") == "worker_error"
        ]
        assert errors and errors[0]["args"]["filter"] == "bomb"
        assert "schedule_slice" in errors[0]["args"]
        assert "steady_iteration" in errors[0]["args"]
        interp.close()
        # The captured traceback's frames pin ring views; drop them while
        # the arena is still alive so its shared memory can finalize cleanly.
        del excinfo
        gc.collect()

    def test_cancellation_mid_session_leaves_no_orphans(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        # Run part of the work, then abandon the session the way a
        # KeyboardInterrupt handler would: close() with workers idle-parked
        # between commands, without a shutdown command having been run.
        interp.run(periods=2)
        assert interp.parallel.alive_workers > 0
        interp.close()
        assert interp.parallel.alive_workers == 0

    def test_close_before_first_run_is_safe(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        interp.close()
        if interp.parallel is not None:
            assert interp.parallel.alive_workers == 0

    def test_context_manager_closes(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            with Interpreter(app, engine="parallel", strategy="softpipe", cores=2) as interp:
                interp.run(periods=2)
        if interp.parallel is not None:
            assert interp.parallel.alive_workers == 0

    def test_zero_period_steady_is_noop(self):
        app = _chain_app(Identity())
        sink = _collect(app)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            with Interpreter(app, engine="parallel", strategy="softpipe", cores=2) as interp:
                interp.run_init()
                before = len(sink.collected)
                interp.run_steady(0)
                assert len(sink.collected) == before


# ---------------------------------------------------------------------------
# Structured downgrades
# ---------------------------------------------------------------------------


class TestParallelDowngrade:
    def test_single_core_request_downgrades_to_batched(self):
        app = _chain_app(Identity())
        with pytest.warns(EngineDowngradeWarning, match="SL304"):
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=1)
        assert interp.engine_used == "batched"
        assert any(d.code == "SL304" for d in interp.downgrades)
        interp.run(periods=4)
        interp.close()

    def test_teleport_portals_downgrade_to_batched(self):
        from repro.apps import freqhop

        app = freqhop.build_teleport()
        with pytest.warns(EngineDowngradeWarning, match="SL304"):
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        assert interp.engine_used == "batched"
        assert any(d.code == "SL304" for d in interp.downgrades)
        interp.close()

    def test_strict_mode_raises_instead_of_downgrading(self):
        app = _chain_app(Identity())
        with pytest.raises(StreamItError, match="SL304"):
            Interpreter(
                app, engine="parallel", strategy="softpipe", cores=1, strict=True
            )

    def test_downgrade_report_is_structured(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=1)
        report = interp.engine_report()
        assert report["requested"] == "parallel"
        assert report["used"] == "batched"
        assert any(d["code"] == "SL304" for d in report["downgrades"])
        interp.close()


# ---------------------------------------------------------------------------
# Bit-exactness against the batched engine, across apps and strategies
# ---------------------------------------------------------------------------

#: Every app under the default strategy; a representative subset under the
#: full strategy matrix (the matrix over ALL_APPS runs in the nightly sweep,
#: not per-commit).
MATRIX_APPS = ("Vocoder", "FMRadio", "FilterBank", "DToA")


class TestParallelDifferential:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_apps_bit_exact_softpipe(self, name):
        builder = ALL_APPS[name]
        ref, _ = _run(builder, "batched", periods=4)
        out, interp = _run(
            builder, "parallel", periods=4, strategy="softpipe", cores=2
        )
        if interp.engine_used != "parallel":
            assert any(d.code == "SL304" for d in interp.downgrades)
        assert out == ref

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    @pytest.mark.parametrize("name", MATRIX_APPS)
    def test_matrix_bit_exact_all_strategies(self, name, strategy):
        builder = ALL_APPS[name]
        ref, _ = _run(builder, "batched", periods=4)
        out, interp = _run(
            builder, "parallel", periods=4, strategy=strategy, cores=4
        )
        if interp.engine_used != "parallel":
            assert any(d.code == "SL304" for d in interp.downgrades)
        assert out == ref

    def test_layout_report_places_io_on_parent(self):
        builder = ALL_APPS["FMRadio"]
        app = builder()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        try:
            layout = interp.engine_report()["parallel"]
            workers = layout["workers"]
            assert len(workers) >= 3  # parent + >=2 compute workers
            parent_nodes = workers[0]
            assert any("source" in n.lower() or "sink" in n.lower() for n in parent_nodes)
            assert layout["ring_edges"]  # cross-worker traffic exists
        finally:
            interp.close()


# ---------------------------------------------------------------------------
# Batched protocol, double-buffered discipline, warm reuse, structured stalls
# ---------------------------------------------------------------------------


def _fresh_parallel(builder, strategy="softpipe", cores=2, **opts):
    """Build a parallel Interpreter on a cold pool/cache (skip on SL304)."""
    drain_warm_arenas()
    clear_struct_cache()
    app = builder()
    sink = _collect(app)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(
            app, engine="parallel", strategy=strategy, cores=cores, **opts
        )
    if interp.engine_used != "parallel":
        interp.close()
        pytest.skip(f"parallel engine downgraded for {strategy}")
    return interp, sink


class _SlowFilter(Filter):
    """Healthy filter that stalls its consumers once, for a long time.

    The nap duration mixes in mutated state so the rate analyzer treats the
    ``sleep`` argument as unknown (rates stay provably static); a concrete
    foreign call would demote the filter to dynamic rates and downgrade the
    engine before the stall path we want to exercise is ever reached.
    """

    def __init__(self, naps: float) -> None:
        super().__init__(pop=1, push=1, name="slow")
        self.naps = naps
        self.count = 0

    def work(self) -> None:
        self.count += 1
        if self.count == 3:
            time.sleep(self.naps + 0.0 * self.count)
        self.push(self.pop())


class TestStructuredStall:
    def test_ring_stall_carries_edge_worker_and_occupancy(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="a->b", timeout=0.05)
            ring.wid = 3
            with pytest.raises(RingStall) as excinfo:
                ring.pop_block(2)
            err = excinfo.value
            assert err.edge == "a->b"
            assert err.worker == 3
            assert err.side == "consumer"
            assert err.need == 2
            assert err.occupancy == 0
            assert err.capacity == 4
            assert "a->b" in str(err) and "worker 3" in str(err)
            # Producer side: fill the ring, then push into a full ring.
            ring.push_block(np.arange(4.0))
            with pytest.raises(RingStall) as excinfo:
                ring.push(9.0)
            assert excinfo.value.side == "producer"
            assert excinfo.value.occupancy == 4
        finally:
            arena.release(unlink=True)

    def test_starved_session_names_edge_and_worker(self, monkeypatch):
        # One filter naps far past the stall deadline: whichever worker is
        # blocked on the starved ring must raise a structured error naming
        # the edge and the worker — not hang for the default two minutes.
        monkeypatch.setenv("REPRO_RING_STALL_S", "0.4")
        interp, _ = _fresh_parallel(lambda: _chain_app(_SlowFilter(3.0)))
        t0 = time.perf_counter()
        with pytest.raises(StreamItError) as excinfo:
            interp.run(4)
        elapsed = time.perf_counter() - t0
        interp.close()
        assert elapsed < 30.0
        # Two valid shapes: the parent stalled (structured "session aborted;
        # worker W stalled ... on ring 'src->dst'") or a child stalled first
        # and its report carries the RingStall traceback.  Both must name
        # the blocked edge and worker.
        msg = str(excinfo.value)
        chain = excinfo.value.__cause__
        structured = (
            isinstance(chain, RingStall) or "stalled" in msg or "RingStall" in msg
        )
        assert structured, msg
        assert "->" in msg and "worker" in msg, msg


class TestBatchedProtocol:
    def test_one_steady_command_per_run_and_single_fork(self):
        interp, sink = _fresh_parallel(ALL_APPS["FilterBank"])
        try:
            interp.run(3)
            interp.run_steady(2)
            interp.run_steady(4)
            proto = interp.engine_report()["parallel"]["protocol"]
        finally:
            interp.close()
        assert proto["fork_count"] == 1
        assert proto["commands"]["init"] == 1
        # O(1) control traffic: exactly one steady command per run() /
        # run_steady() call, regardless of the periods each one covers.
        assert proto["commands"]["steady"] == 3
        assert proto["steady_runs"] == 3

    def test_warm_session_reuse_is_bit_exact(self):
        builder = ALL_APPS["FilterBank"]
        ref, _ = _run(builder, "batched", periods=8)
        interp, sink = _fresh_parallel(builder)
        try:
            interp.run(5)
            interp.run_steady(3)
            out = list(sink.collected)
        finally:
            interp.close()
        assert out == ref

    def test_no_leaked_segments_after_close_and_drain(self):
        interp, _ = _fresh_parallel(ALL_APPS["FMRadio"])
        segment = interp.parallel._arena.shm.name
        interp.run(2)
        interp.close()
        drain_warm_arenas()
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{segment.lstrip('/')}")


class TestDoubleBuffered:
    @pytest.mark.parametrize("strategy", ("task", "data", "fine_grained"))
    def test_dag_strategies_run_barrier_free_at_proved_capacity(
        self, strategy, monkeypatch
    ):
        # REPRO_RING_SLACK=0 allocates exactly the certified capacity: the
        # proofs alone must make the barrier-free run safe and bit-exact.
        monkeypatch.setenv("REPRO_RING_SLACK", "0")
        builder = ALL_APPS["FilterBank"]
        ref, _ = _run(builder, "batched", periods=6)
        interp, sink = _fresh_parallel(builder, strategy=strategy)
        try:
            assert interp.parallel.discipline == "double_buffered"
            interp.run(4)
            interp.run_steady(2)
            proto = interp.parallel.protocol_report()
            out = list(sink.collected)
        finally:
            interp.close()
        # Start + finish per command only — zero per-batch step barriers.
        commands = proto["commands"]["init"] + proto["commands"]["steady"]
        assert proto["barrier_waits"] == 2 * commands
        assert out == ref

    def test_legacy_env_restores_dag_barriers(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_LEGACY", "1")
        builder = ALL_APPS["FilterBank"]
        ref, _ = _run(builder, "batched", periods=6)
        interp, sink = _fresh_parallel(builder, strategy="task")
        try:
            assert interp.parallel.discipline == "dag"
            interp.run(6)
            proto = interp.parallel.protocol_report()
            out = list(sink.collected)
        finally:
            interp.close()
        commands = proto["commands"]["init"] + proto["commands"]["steady"]
        assert proto["barrier_waits"] > 2 * commands  # step barriers are back
        assert out == ref

    def test_proofs_certify_double_buffer_capacity(self):
        interp, _ = _fresh_parallel(ALL_APPS["FilterBank"], strategy="task")
        try:
            session = interp.parallel
            assert session.ring_proofs
            for proof in session.ring_proofs.values():
                if proof.proved:
                    assert proof.batch_items > 0
                    assert proof.db_capacity == proof.capacity + proof.batch_items
        finally:
            interp.close()


class TestWarmStructures:
    def test_second_session_adopts_arena_and_struct_cache(self):
        builder = ALL_APPS["FilterBank"]
        interp, _ = _fresh_parallel(builder)
        first = interp.parallel.protocol_report()
        interp.run(2)
        interp.close()
        assert first["arena_reused"] is False
        assert first["struct_cache"] == "miss"

        app = builder()
        sink = _collect(app)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp2 = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        try:
            second = interp2.parallel.protocol_report()
            interp2.run(2)
            out = list(sink.collected)
        finally:
            interp2.close()
            drain_warm_arenas()
        assert second["arena_reused"] is True
        assert second["struct_cache"] == "hit"
        ref, _ = _run(builder, "batched", periods=2)
        assert out == ref


class TestRebalance:
    def test_busy_skew_arithmetic(self):
        from repro.tune import busy_skew

        report = {
            0: {"busy_s": 3.0, "stall_s": 1.0, "wall_s": 4.0, "busy_share": 0.75},
            1: {"busy_s": 1.0, "stall_s": 3.0, "wall_s": 4.0, "busy_share": 0.25},
        }
        assert busy_skew(report) == pytest.approx(0.75 / 0.5)
        assert busy_skew({}) == 0.0

    def test_rebalance_stores_profile_and_retune_applies(
        self, monkeypatch, tmp_path
    ):
        from repro.tune import rebalance_parallel

        monkeypatch.setenv("REPRO_TUNED_CACHE", str(tmp_path))
        builder = ALL_APPS["FilterBank"]
        interp, _ = _fresh_parallel(builder)
        try:
            interp.run(6)
            report = rebalance_parallel(interp, threshold=0.5)
        finally:
            interp.close()
        assert report.triggered and report.stored
        assert report.profile  # measured per-node work ratios
        assert report.skew >= 1.0

        app = builder()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp2 = Interpreter(
                app, engine="parallel", strategy="softpipe", cores=2, tune=True
            )
        try:
            if interp2.engine_used != "parallel":
                pytest.skip("parallel engine downgraded")
            assert interp2.tuned is not None
            assert interp2.tuned.work == report.profile
            interp2.run(2)  # the re-cut partition must still run clean
        finally:
            interp2.close()
            drain_warm_arenas()
