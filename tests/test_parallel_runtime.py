"""Tests for the parallel runtime: ring buffers, worker lifecycle, and
bit-exactness of ``engine="parallel"`` against the batched engine.

The ring tests drive :class:`RingChannel` through its edge cases directly
(wraparound, blocked producer/consumer, abort).  The lifecycle tests assert
the issue's teardown contract: no orphaned worker processes on success, on
an exception inside a worker (error carries the filter's instance name), or
on cancellation mid-session.  The differential tests run real apps under
every mapping strategy and require bit-identical output or a structured
``SL304`` downgrade — never a crash.
"""

import gc
import threading
import time
import warnings

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.errors import EngineDowngradeWarning, StreamItError
from repro.graph.base import Filter
from repro.graph.builtins import ArraySource, CollectSink, Identity
from repro.graph.composites import Pipeline
from repro.mapping.strategies import STRATEGIES
from repro.runtime import Interpreter
from repro.runtime.ring import RingAbort, RingArena, RingStall

STRATEGY_NAMES = tuple(STRATEGIES)


def _collect(app):
    return next(f for f in app.filters() if isinstance(f, CollectSink))


def _run(builder, engine, periods=6, **opts):
    app = builder()
    sink = _collect(app)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, engine=engine, **opts)
    try:
        interp.run(periods)
    finally:
        interp.close()
    return list(sink.collected), interp


# ---------------------------------------------------------------------------
# Ring buffer edge cases
# ---------------------------------------------------------------------------


class TestRingChannel:
    def test_wraparound_at_capacity(self):
        arena = RingArena([8])
        try:
            ring = arena.ring(0, name="wrap")
            # Fill, drain partially, refill: the second block must wrap.
            ring.push_block(np.arange(6.0))
            assert ring.pop_block(4).tolist() == [0.0, 1.0, 2.0, 3.0]
            ring.push_block(np.arange(10.0, 15.0))  # crosses the end
            assert len(ring) == 7
            assert ring.snapshot() == [4.0, 5.0, 10.0, 11.0, 12.0, 13.0, 14.0]
            # peek_block over the wrapped window copies but stays correct.
            assert ring.peek_block(7).tolist() == ring.snapshot()
            ring.drop(7)
            assert len(ring) == 0
        finally:
            arena.release(unlink=True)

    def test_counters_survive_wraparound(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="count")
            for i in range(25):
                ring.push(float(i))
                assert ring.pop() == float(i)
            assert ring.pushed_count == 25
            assert ring.popped_count == 25
        finally:
            arena.release(unlink=True)

    def test_consumer_blocked_until_producer_pushes(self):
        arena = RingArena([8])
        try:
            ring = arena.ring(0, name="cb", timeout=5.0)

            def produce():
                time.sleep(0.05)
                ring.push_block(np.arange(3.0))

            t = threading.Thread(target=produce)
            t.start()
            # Blocks (the items don't exist yet), then returns them.
            assert ring.pop_block(3).tolist() == [0.0, 1.0, 2.0]
            t.join()
        finally:
            arena.release(unlink=True)

    def test_producer_blocked_until_consumer_pops(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="pb", timeout=5.0)
            ring.push_block(np.arange(4.0))  # full

            def consume():
                time.sleep(0.05)
                ring.drop(3)

            t = threading.Thread(target=consume)
            t.start()
            ring.push_block(np.array([9.0, 10.0]))  # blocks until the drop
            t.join()
            assert ring.snapshot() == [3.0, 9.0, 10.0]
        finally:
            arena.release(unlink=True)

    def test_blocked_wait_times_out_as_stall(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="stall", timeout=0.05)
            with pytest.raises(RingStall):
                ring.pop_block(1)  # nobody will ever push
            ring.push_block(np.arange(4.0))
            with pytest.raises(RingStall):
                ring.push(5.0)  # nobody will ever pop
        finally:
            arena.release(unlink=True)

    def test_abort_unblocks_waiters(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="abort", timeout=30.0)

            def aborter():
                time.sleep(0.05)
                arena.abort()

            t = threading.Thread(target=aborter)
            t.start()
            with pytest.raises(RingAbort):
                ring.pop_block(1)
            t.join()
        finally:
            arena.release(unlink=True)

    def test_oversized_single_push_is_a_planner_bug(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="big")
            with pytest.raises(StreamItError):
                ring.push_block(np.arange(5.0))
        finally:
            arena.release(unlink=True)

    def test_zero_item_operations_are_noops(self):
        arena = RingArena([4])
        try:
            ring = arena.ring(0, name="zero")
            ring.push_block(np.empty(0))
            ring.drop(0)
            assert ring.peek_block(0).tolist() == []
            assert len(ring) == 0
        finally:
            arena.release(unlink=True)


# ---------------------------------------------------------------------------
# Worker lifecycle
# ---------------------------------------------------------------------------


class _BombFilter(Filter):
    """Works fine during init, explodes on the Nth steady firing."""

    def __init__(self, fuse: int) -> None:
        super().__init__(pop=1, push=1, name="bomb")
        self.fuse = fuse
        self.count = 0

    def work(self) -> None:
        self.count += 1
        if self.count > self.fuse:
            raise RuntimeError("boom")
        self.push(self.pop() * 2.0)


def _chain_app(middle):
    data = [float(v) for v in np.arange(16.0)]
    return Pipeline(
        ArraySource(data),
        Identity(),
        middle,
        Identity(),
        CollectSink(),
    )


class TestWorkerLifecycle:
    def test_clean_shutdown_on_success(self):
        out, interp = _run(
            lambda: _chain_app(Identity()), "parallel", strategy="softpipe", cores=2
        )
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        assert interp.parallel.alive_workers == 0
        interp.close()  # idempotent
        assert interp.parallel.alive_workers == 0

    def test_worker_exception_propagates_with_filter_name(self):
        app = _chain_app(_BombFilter(fuse=4))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        with pytest.raises(StreamItError, match="bomb"):
            interp.run(periods=64)
        # No orphans: every worker joined during failure teardown.
        assert interp.parallel.alive_workers == 0
        interp.close()
        with pytest.raises(StreamItError, match="closed"):
            interp.run_steady(1)

    def test_worker_error_carries_slice_and_iteration(self):
        # A fuse long enough that the bomb survives init and explodes in
        # steady state, where the command carries slice/iteration context.
        app = _chain_app(_BombFilter(fuse=30))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                app, engine="parallel", strategy="softpipe", cores=2, trace=True
            )
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        with pytest.raises(StreamItError, match="bomb") as excinfo:
            interp.run(periods=100)
        message = str(excinfo.value)
        assert "schedule slice" in message
        assert "steady iteration" in message
        # The traced run records the same context as a worker_error event.
        errors = [
            e for e in interp.tracer.events if e.get("name") == "worker_error"
        ]
        assert errors and errors[0]["args"]["filter"] == "bomb"
        assert "schedule_slice" in errors[0]["args"]
        assert "steady_iteration" in errors[0]["args"]
        interp.close()
        # The captured traceback's frames pin ring views; drop them while
        # the arena is still alive so its shared memory can finalize cleanly.
        del excinfo
        gc.collect()

    def test_cancellation_mid_session_leaves_no_orphans(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        if interp.engine_used != "parallel":
            pytest.skip("degenerate partition on this host")
        # Run part of the work, then abandon the session the way a
        # KeyboardInterrupt handler would: close() with workers idle-parked
        # between commands, without a shutdown command having been run.
        interp.run(periods=2)
        assert interp.parallel.alive_workers > 0
        interp.close()
        assert interp.parallel.alive_workers == 0

    def test_close_before_first_run_is_safe(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        interp.close()
        if interp.parallel is not None:
            assert interp.parallel.alive_workers == 0

    def test_context_manager_closes(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            with Interpreter(app, engine="parallel", strategy="softpipe", cores=2) as interp:
                interp.run(periods=2)
        if interp.parallel is not None:
            assert interp.parallel.alive_workers == 0

    def test_zero_period_steady_is_noop(self):
        app = _chain_app(Identity())
        sink = _collect(app)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            with Interpreter(app, engine="parallel", strategy="softpipe", cores=2) as interp:
                interp.run_init()
                before = len(sink.collected)
                interp.run_steady(0)
                assert len(sink.collected) == before


# ---------------------------------------------------------------------------
# Structured downgrades
# ---------------------------------------------------------------------------


class TestParallelDowngrade:
    def test_single_core_request_downgrades_to_batched(self):
        app = _chain_app(Identity())
        with pytest.warns(EngineDowngradeWarning, match="SL304"):
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=1)
        assert interp.engine_used == "batched"
        assert any(d.code == "SL304" for d in interp.downgrades)
        interp.run(periods=4)
        interp.close()

    def test_teleport_portals_downgrade_to_batched(self):
        from repro.apps import freqhop

        app = freqhop.build_teleport()
        with pytest.warns(EngineDowngradeWarning, match="SL304"):
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        assert interp.engine_used == "batched"
        assert any(d.code == "SL304" for d in interp.downgrades)
        interp.close()

    def test_strict_mode_raises_instead_of_downgrading(self):
        app = _chain_app(Identity())
        with pytest.raises(StreamItError, match="SL304"):
            Interpreter(
                app, engine="parallel", strategy="softpipe", cores=1, strict=True
            )

    def test_downgrade_report_is_structured(self):
        app = _chain_app(Identity())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=1)
        report = interp.engine_report()
        assert report["requested"] == "parallel"
        assert report["used"] == "batched"
        assert any(d["code"] == "SL304" for d in report["downgrades"])
        interp.close()


# ---------------------------------------------------------------------------
# Bit-exactness against the batched engine, across apps and strategies
# ---------------------------------------------------------------------------

#: Every app under the default strategy; a representative subset under the
#: full strategy matrix (the matrix over ALL_APPS runs in the nightly sweep,
#: not per-commit).
MATRIX_APPS = ("Vocoder", "FMRadio", "FilterBank", "DToA")


class TestParallelDifferential:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_apps_bit_exact_softpipe(self, name):
        builder = ALL_APPS[name]
        ref, _ = _run(builder, "batched", periods=4)
        out, interp = _run(
            builder, "parallel", periods=4, strategy="softpipe", cores=2
        )
        if interp.engine_used != "parallel":
            assert any(d.code == "SL304" for d in interp.downgrades)
        assert out == ref

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    @pytest.mark.parametrize("name", MATRIX_APPS)
    def test_matrix_bit_exact_all_strategies(self, name, strategy):
        builder = ALL_APPS[name]
        ref, _ = _run(builder, "batched", periods=4)
        out, interp = _run(
            builder, "parallel", periods=4, strategy=strategy, cores=4
        )
        if interp.engine_used != "parallel":
            assert any(d.code == "SL304" for d in interp.downgrades)
        assert out == ref

    def test_layout_report_places_io_on_parent(self):
        builder = ALL_APPS["FMRadio"]
        app = builder()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(app, engine="parallel", strategy="softpipe", cores=2)
        try:
            layout = interp.engine_report()["parallel"]
            workers = layout["workers"]
            assert len(workers) >= 3  # parent + >=2 compute workers
            parent_nodes = workers[0]
            assert any("source" in n.lower() or "sink" in n.lower() for n in parent_nodes)
            assert layout["ring_edges"]  # cross-worker traffic exists
        finally:
            interp.close()
