"""Unit tests for the stream-graph IR: rates, hierarchy, builtins."""

import pytest

from repro.errors import RateError, ValidationError
from repro.graph import (
    ArraySource,
    CollectSink,
    Decimator,
    Duplicator,
    Expander,
    FeedbackLoop,
    Filter,
    FunctionFilter,
    FunctionSource,
    Identity,
    NullSink,
    Pipeline,
    Rate,
    SplitJoin,
    duplicate,
    joiner_roundrobin,
    null_joiner,
    null_splitter,
    roundrobin,
)
from tests.helpers import FIR, Gain, run_pipeline


class TestRate:
    def test_defaults_peek_to_pop(self):
        f = Gain(2.0)
        assert f.rate.peek == f.rate.pop == 1

    def test_peek_below_pop_is_raised_to_pop(self):
        class F(Filter):
            def __init__(self):
                super().__init__(peek=1, pop=3, push=1)

            def work(self):
                pass

        assert F().rate.peek == 3

    def test_negative_rates_rejected(self):
        with pytest.raises(RateError):
            Rate(peek=1, pop=-1, push=0)

    def test_non_integer_rates_rejected(self):
        with pytest.raises(RateError):
            Rate(peek=1.5, pop=1, push=1)  # type: ignore[arg-type]

    def test_extra_peek(self):
        assert Rate(peek=5, pop=2, push=1).extra_peek == 3

    def test_source_sink_flags(self):
        assert ArraySource([1.0]).is_source
        assert not ArraySource([1.0]).is_sink
        assert NullSink().is_sink
        assert not NullSink().is_source


class TestHierarchy:
    def test_pipeline_children_in_order(self):
        a, b, c = Identity(), Identity(), Identity()
        pipe = Pipeline(a, b, c)
        assert pipe.children() == (a, b, c)
        assert len(pipe) == 3
        assert pipe[1] is b

    def test_streams_preorder(self):
        inner = Pipeline(Identity(), Identity())
        outer = Pipeline(Identity(), inner)
        names = [type(s).__name__ for s in outer.streams()]
        assert names == ["Pipeline", "Identity", "Pipeline", "Identity", "Identity"]

    def test_filters_yields_leaves_only(self):
        pipe = Pipeline(Identity(), Pipeline(Identity()))
        assert all(isinstance(f, Filter) for f in pipe.filters())
        assert sum(1 for _ in pipe.filters()) == 2

    def test_depth(self):
        assert Identity().depth() == 1
        assert Pipeline(Identity()).depth() == 2
        assert Pipeline(Pipeline(Identity())).depth() == 3

    def test_instance_reuse_rejected(self):
        shared = Identity()
        Pipeline(shared)
        with pytest.raises(ValidationError):
            Pipeline(shared)

    def test_splitjoin_weight_arity_checked(self):
        with pytest.raises(ValidationError):
            SplitJoin(roundrobin(1, 1, 1), [Identity(), Identity()], joiner_roundrobin())

    def test_splitjoin_requires_branch(self):
        with pytest.raises(ValidationError):
            SplitJoin(duplicate(), [], joiner_roundrobin())

    def test_feedback_rejects_null_spec(self):
        with pytest.raises(ValidationError):
            FeedbackLoop(null_joiner(), Identity(), roundrobin(1, 1), Identity(), delay=1)

    def test_feedback_rejects_negative_delay(self):
        with pytest.raises(ValidationError):
            FeedbackLoop(
                joiner_roundrobin(1, 1), Identity(), roundrobin(1, 1), Identity(), delay=-1
            )

    def test_feedback_initial_values(self):
        loop = FeedbackLoop(
            joiner_roundrobin(1, 1),
            Identity(),
            roundrobin(1, 1),
            Identity(),
            delay=3,
            init_path=lambda i: float(i * 10),
        )
        assert loop.initial_values() == [0.0, 10.0, 20.0]


class TestBuiltins:
    def test_identity_passthrough(self):
        assert run_pipeline(Identity(), data=[1.0, 2.0], periods=4) == [1.0, 2.0, 1.0, 2.0]

    def test_array_source_cycles(self):
        assert run_pipeline(data=[5.0, 6.0], periods=5) == [5.0, 6.0, 5.0, 6.0, 5.0]

    def test_array_source_requires_data(self):
        with pytest.raises(ValidationError):
            ArraySource([])

    def test_function_source(self):
        out = run_pipeline(Gain(1.0), data=[0.0], periods=0)
        src = FunctionSource(lambda i: float(i * i))
        sink = CollectSink()
        from repro.runtime import Interpreter

        Interpreter(Pipeline(src, sink)).run(periods=4)
        assert sink.collected == [0.0, 1.0, 4.0, 9.0]

    def test_decimator(self):
        out = run_pipeline(Decimator(3), data=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], periods=2)
        assert out == [1.0, 4.0]

    def test_decimator_offset(self):
        out = run_pipeline(Decimator(3, offset=1), data=[1.0, 2.0, 3.0], periods=2)
        assert out == [2.0, 2.0]

    def test_decimator_validates(self):
        with pytest.raises(ValidationError):
            Decimator(0)
        with pytest.raises(ValidationError):
            Decimator(2, offset=2)

    def test_expander_zero_stuffs(self):
        out = run_pipeline(Expander(3), data=[7.0], periods=2)
        assert out == [7.0, 0.0, 0.0, 7.0, 0.0, 0.0]

    def test_duplicator(self):
        out = run_pipeline(Duplicator(2), data=[1.0, 2.0], periods=2)
        assert out == [1.0, 1.0, 2.0, 2.0]

    def test_function_filter_window(self):
        f = FunctionFilter(lambda w: [sum(w)], pop=1, push=1, peek=2)
        out = run_pipeline(f, data=[1.0, 2.0, 3.0], periods=3)
        assert out == [3.0, 5.0, 4.0]

    def test_function_filter_arity_checked(self):
        f = FunctionFilter(lambda w: [1.0, 2.0], pop=1, push=1)
        with pytest.raises(ValidationError):
            run_pipeline(f, data=[1.0], periods=1)


class TestSpecs:
    def test_splitter_kinds(self):
        assert duplicate().resolved_weights(3) == (1, 1, 1)
        assert roundrobin(2, 3).resolved_weights(2) == (2, 3)
        assert roundrobin().resolved_weights(4) == (1, 1, 1, 1)
        assert null_splitter().resolved_weights(2) == (0, 0)

    def test_roundrobin_rejects_bad_weights(self):
        with pytest.raises(RateError):
            roundrobin(-1, 2)
        with pytest.raises(RateError):
            roundrobin(0, 0)

    def test_joiner_pop_push_per_cycle(self):
        assert joiner_roundrobin(2, 3).push_per_cycle(2) == 5
        assert duplicate().pop_per_cycle(5) == 1
