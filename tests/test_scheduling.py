"""Tests for SDF rate solving and schedule construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.graph import (
    ArraySource,
    CollectSink,
    FeedbackLoop,
    Identity,
    NullSink,
    Pipeline,
    SplitJoin,
    duplicate,
    flatten,
    joiner_roundrobin,
    roundrobin,
)
from repro.scheduling import build_schedule, repetitions, steady_state_items
from tests.helpers import FIR, Downsample2, Gain, PeekAverage, Upsample3, run_pipeline


class TestRepetitions:
    def test_unit_chain(self):
        graph = flatten(Pipeline(ArraySource([1.0]), Gain(1.0), NullSink()))
        reps = repetitions(graph)
        assert all(r == 1 for r in reps.values())

    def test_rate_changers(self):
        graph = flatten(
            Pipeline(ArraySource([1.0]), Upsample3(), Downsample2(), NullSink())
        )
        reps = {n.name.split("_")[0]: r for n, r in repetitions(graph).items()}
        # up 3x then down 2x: source*2 -> up fires 2 -> 6 items -> down 3 -> 3 out
        by_node = list(repetitions(graph).values())
        graph2 = flatten(
            Pipeline(ArraySource([1.0]), Upsample3(), Downsample2(), NullSink())
        )
        reps2 = repetitions(graph2)
        counts = sorted(reps2.values())
        assert counts == [2, 2, 3, 3]

    def test_balance_equation_holds(self):
        from repro.apps import ALL_APPS

        for name, builder in ALL_APPS.items():
            graph = flatten(builder())
            reps = repetitions(graph)
            for e in graph.edges:
                assert reps[e.src] * e.push_rate == reps[e.dst] * e.pop_rate, name

    def test_minimality(self):
        from math import gcd

        from repro.apps import fft

        graph = flatten(fft.build(n=8))
        values = list(repetitions(graph).values())
        assert gcd(*values) == 1

    def test_splitjoin_weights(self):
        app = Pipeline(
            ArraySource([1.0]),
            SplitJoin(
                roundrobin(1, 2),
                [Identity(), Identity()],
                joiner_roundrobin(1, 2),
            ),
            NullSink(),
        )
        graph = flatten(app)
        reps = repetitions(graph)
        ids = sorted(
            reps[n] for n in graph.nodes if n.kind == "filter" and "Identity" in n.name
        )
        assert ids == [1, 2]

    def test_steady_state_items(self):
        graph = flatten(Pipeline(ArraySource([1.0]), Upsample3(), NullSink()))
        reps = repetitions(graph)
        items = steady_state_items(graph, reps)
        assert sorted(items.values()) == [1, 3]


class TestSchedules:
    def test_init_primes_peeking(self):
        graph = flatten(Pipeline(ArraySource([1.0]), FIR([1.0] * 5), NullSink()))
        prog = build_schedule(graph)
        # The source must run 4 extra firings before the steady state.
        src = next(n for n in graph.nodes if not n.in_edges)
        assert prog.init.counts().get(src, 0) == 4

    def test_no_init_without_peeking(self):
        graph = flatten(Pipeline(ArraySource([1.0]), Gain(1.0), NullSink()))
        prog = build_schedule(graph)
        assert prog.init.total_firings == 0

    def test_steady_counts_match_repetitions(self):
        from repro.apps import filterbank

        graph = flatten(filterbank.build())
        prog = build_schedule(graph)
        assert prog.steady.counts() == {
            n: r for n, r in prog.reps.items() if r > 0
        }

    def test_feedback_interleaving(self):
        # delay 1 forces the steady schedule to alternate around the loop.
        loop = FeedbackLoop(
            joiner_roundrobin(1, 1), Identity(), roundrobin(1, 1), Identity(), delay=1
        )
        graph = flatten(Pipeline(ArraySource([1.0]), loop, NullSink()))
        prog = build_schedule(graph)
        joiner = next(n for n in graph.nodes if n.kind == "joiner")
        assert prog.steady.counts()[joiner] >= 1

    def test_buffer_bounds_cover_execution(self):
        from repro.apps import tde

        graph = flatten(tde.build())
        prog = build_schedule(graph)
        for edge, bound in prog.buffer_bounds.items():
            assert bound >= len(edge.initial)
            assert bound >= 0

    def test_all_apps_schedule(self):
        from repro.apps import ALL_APPS

        for name, builder in ALL_APPS.items():
            graph = flatten(builder())
            prog = build_schedule(graph)
            assert prog.steady.total_firings > 0, name


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        up=st.integers(min_value=1, max_value=5),
        down=st.integers(min_value=1, max_value=5),
        taps=st.integers(min_value=1, max_value=9),
    )
    def test_random_rate_chain_schedules(self, up, down, taps):
        """Any up/FIR/down chain has a feasible periodic schedule whose
        per-period item counts balance on every channel."""

        class Up(type("U", (), {})):
            pass

        from repro.graph import Expander, Decimator

        graph = flatten(
            Pipeline(
                ArraySource([1.0, 2.0]),
                Expander(up),
                FIR([1.0] * taps),
                Decimator(down),
                NullSink(),
            )
        )
        prog = build_schedule(graph)
        for e in graph.edges:
            assert prog.reps[e.src] * e.push_rate == prog.reps[e.dst] * e.pop_rate

    @settings(max_examples=30, deadline=None)
    @given(periods=st.integers(min_value=1, max_value=7))
    def test_output_volume_scales_with_periods(self, periods):
        out = run_pipeline(PeekAverage(), data=[1.0, 2.0, 3.0, 4.0], periods=periods)
        assert len(out) == periods
