"""The codegen engine's contract: one generated module, same outputs.

``engine="codegen"`` must be bit-exact against the scalar interpreter on
every application (the generated module splices the same lifted kernels
and rewrites the same core work() bodies the batched engine runs, so
there is no tolerance to hide behind), must report its per-block lowering
through ``engine_report()`` and ``SL305``, and must hit its two-level
module cache — in-memory within a process, on disk across "processes"
(simulated here by clearing the memory level).
"""

import warnings

import pytest

from repro.apps import ALL_APPS
from repro.errors import EngineDowngradeWarning, StreamItError
from repro.graph import ArraySource, CollectSink, Pipeline
from repro.graph.builtins import Identity
from repro.runtime import (
    CodegenPlan,
    Interpreter,
    clear_codegen_cache,
    codegen_cache_stats,
    codegen_cache_summary,
)
from repro.runtime import codegen as codegen_mod
from repro.runtime.plan import clear_plan_cache, plan_cache_summary
from tests.helpers import Accumulator, Gain


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Every test gets its own empty disk cache and zeroed counters."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cgc"))
    clear_codegen_cache()
    yield
    clear_codegen_cache()


def _run(builder, engine: str, periods: int):
    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine)
        interp.run(periods)
    return list(sink.collected), interp


# -- bit-exactness sweep -----------------------------------------------------


@pytest.mark.parametrize("app_name", sorted(ALL_APPS), ids=str)
def test_codegen_matches_scalar_exactly(app_name):
    builder = ALL_APPS[app_name]
    scalar, _ = _run(builder, "scalar", 3)
    generated, interp = _run(builder, "codegen", 3)
    assert len(scalar) > 0
    assert generated == scalar  # bit-for-bit, not approximately
    if app_name == "FreqHopRadio":  # teleport messaging: whole-plan fallback
        assert interp.engine_used == "batched"
    else:
        assert interp.engine_used == "codegen"
        assert isinstance(interp.plan, CodegenPlan)


@pytest.mark.parametrize("app_name", ["FIR", "FilterBank", "Oversampler", "DToA"])
def test_fired_counts_match_scalar(app_name):
    _, scalar = _run(ALL_APPS[app_name], "scalar", 4)
    _, generated = _run(ALL_APPS[app_name], "codegen", 4)
    scalar_counts = sorted((node.name, n) for node, n in scalar.fired.items())
    codegen_counts = sorted((node.name, n) for node, n in generated.fired.items())
    assert codegen_counts == scalar_counts


def test_dtoa_core_is_inlined():
    """The tentpole case: DToA's feedback core must lower to the closed
    loop, not fall back to the interpreted CoreLoopRunner."""
    _, interp = _run(ALL_APPS["DToA"], "codegen", 5)
    cores = [b for b in interp.plan.codegen_meta["blocks"] if b["kind"] == "core"]
    assert cores and all(b["mode"] == "inline" for b in cores)
    assert interp.plan.codegen_fallbacks == []


# -- generated-module introspection ------------------------------------------


def test_generated_source_is_real_compilable_python():
    _, interp = _run(ALL_APPS["FMRadio"], "codegen", 2)
    source = interp.plan.generated_source
    assert source and "def run_chunk(scale):" in source
    compile(source, "<check>", "exec")  # must be valid standalone source
    assert interp.plan.generated_path is not None


def test_engine_report_carries_codegen_section():
    _, interp = _run(ALL_APPS["DToA"], "codegen", 2)
    report = interp.engine_report()
    assert report["used"] == "codegen"
    section = report["codegen"]
    assert section["active"] and section["materialized"]
    assert section["cache_outcome"] in ("miss", "mem_hit", "disk_hit")
    modes = [b.get("mode") for b in section["blocks"] if b["kind"] != "fused"]
    assert all(m in ("inline", "call", "fallback") for m in modes)
    assert "plan_cache" in report and "size" in report["plan_cache"]


# -- cache behaviour ---------------------------------------------------------


def test_second_run_hits_memory_then_disk_cache():
    builder = ALL_APPS["FMRadio"]
    _, first = _run(builder, "codegen", 2)
    assert first.plan.cache_outcome == "miss"
    assert codegen_cache_stats["disk_misses"] == 1

    _, second = _run(builder, "codegen", 2)
    assert second.plan.cache_outcome == "mem_hit"
    assert codegen_cache_stats["mem_hits"] == 1

    # A fresh process keeps the disk artifact but not the memory cache.
    clear_codegen_cache()
    out_scalar, _ = _run(builder, "scalar", 2)
    out_disk, third = _run(builder, "codegen", 2)
    assert third.plan.cache_outcome == "disk_hit"
    assert codegen_cache_stats["disk_hits"] == 1
    assert codegen_cache_stats["disk_misses"] == 0
    assert out_disk == out_scalar  # the rebound cached module still runs


def test_memory_cache_eviction_is_bounded(monkeypatch):
    monkeypatch.setattr(codegen_mod, "_MEM_CACHE_MAX", 1)
    _run(ALL_APPS["FIR"], "codegen", 2)
    _run(ALL_APPS["FMRadio"], "codegen", 2)
    summary = codegen_cache_summary()
    assert summary["mem_size"] <= 1
    assert summary["mem_evictions"] >= 1


def test_disk_cache_eviction_is_bounded(monkeypatch):
    monkeypatch.setattr(codegen_mod, "_DISK_CACHE_MAX", 1)
    _run(ALL_APPS["FIR"], "codegen", 2)
    _run(ALL_APPS["FMRadio"], "codegen", 2)
    summary = codegen_cache_summary()
    assert summary["disk_size"] <= 1
    assert summary["disk_evictions"] >= 1


def test_plan_cache_eviction_counter(monkeypatch):
    from repro.runtime import plan as plan_mod

    clear_plan_cache()
    monkeypatch.setattr(plan_mod, "_PLAN_CACHE_MAX", 1)
    _run(ALL_APPS["FIR"], "batched", 1)
    _run(ALL_APPS["FMRadio"], "batched", 1)
    summary = plan_cache_summary()
    assert summary["size"] <= 1
    assert summary["evictions"] >= 1
    clear_plan_cache()
    assert plan_cache_summary()["evictions"] == 0


# -- fallback ladder (SL305) -------------------------------------------------


def test_messaging_app_downgrades_whole_plan_with_sl305():
    builder = ALL_APPS["FreqHopRadio"]
    scalar, _ = _run(builder, "scalar", 3)
    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with pytest.warns(EngineDowngradeWarning, match="SL305"):
        interp = Interpreter(app, check=False, engine="codegen")
    interp.run(3)
    assert interp.engine_used == "batched"
    assert any(d.code == "SL305" for d in interp.downgrades)
    assert list(sink.collected) == scalar


def test_messaging_app_strict_raises():
    with pytest.raises(StreamItError, match="SL305"):
        Interpreter(
            ALL_APPS["FreqHopRadio"](), check=False, engine="codegen", strict=True
        )


def test_unliftable_filter_becomes_fallback_block():
    """A stateful filter the lifter rejects keeps its adaptive executor;
    the rest of the module still runs generated, and SL305 names it."""

    def build():
        return Pipeline(
            ArraySource([1.0, 2.0, -3.0, 0.5]),
            Gain(2.0),
            Accumulator(),  # stores self.total in work(): not liftable
            CollectSink(),
        )

    scalar, _ = _run(build, "scalar", 6)
    app = build()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    interp = Interpreter(app, check=False, engine="codegen")
    with pytest.warns(EngineDowngradeWarning, match="SL305"):
        interp.run(6)
    assert interp.engine_used == "codegen"  # partial fallback, still codegen
    assert interp.plan.codegen_fallbacks  # the Accumulator block
    assert any(d.code == "SL305" for d in interp.downgrades)
    assert list(sink.collected) == scalar


def test_strict_raises_on_fallback_blocks():
    def build():
        return Pipeline(
            ArraySource([1.0, 2.0]), Accumulator(), Identity(), CollectSink()
        )

    interp = Interpreter(build(), check=False, engine="codegen", strict=True)
    with pytest.raises(StreamItError, match="SL305"):
        interp.run(3)


# -- observability -----------------------------------------------------------


def test_traced_codegen_run_renders_cache_section():
    from repro.obs.report import render_report

    app = ALL_APPS["DToA"]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine="codegen", trace=True)
        interp.run(4)
        interp.close()
    payload = interp.tracer.chrome()
    meta = payload["repro"]["meta"]
    assert meta["engine"] == "codegen"
    assert "codegen_cache" in meta
    spans = [e for e in payload["traceEvents"] if e.get("cat") == "codegen"]
    assert spans, "expected codegen:run_chunk spans in the trace"
    text = render_report(payload)
    assert "codegen cache:" in text


def test_codegen_spans_count_as_self_time():
    from repro.obs.tracer import CAT_CODEGEN, SELF_TIME_CATS

    assert CAT_CODEGEN in SELF_TIME_CATS
