"""Tests for whole-program optimization: combination, frequency, selection."""

import numpy as np
import pytest

from repro.graph import (
    ArraySource,
    CollectSink,
    Identity,
    Pipeline,
    SplitJoin,
    duplicate,
    joiner_roundrobin,
)
from repro.linear import (
    FrequencyFilter,
    LinearFilter,
    apply_combination,
    apply_frequency,
    apply_selection,
    collapse_linear,
    subtree_cost_per_item,
)
from repro.runtime import Interpreter
from tests.helpers import FIR, Gain, Square, run_stream

DATA = [1.0, -2.0, 0.5, 3.0, -1.5, 2.5, 0.25, -0.75]
C1 = [0.5, -0.25, 1.0, 0.125]
C2 = [1.5, 0.75]


def linear_app():
    return Pipeline(
        ArraySource(DATA), FIR(C1, name="f1"), Gain(0.5), FIR(C2, name="f2"), CollectSink()
    )


def mixed_app():
    return Pipeline(
        ArraySource(DATA),
        FIR(C1, name="f1"),
        Square(),
        FIR(C2, name="f2"),
        Gain(2.0),
        CollectSink(),
    )


def reference_output(builder, periods):
    return run_stream(builder(), periods)


class TestCollapse:
    def test_pipeline_collapse(self):
        rep = collapse_linear(Pipeline(FIR(C1), Gain(2.0)))
        assert rep is not None and rep.peek == len(C1)

    def test_nonlinear_blocks_collapse(self):
        assert collapse_linear(Pipeline(FIR(C1), Square())) is None

    def test_splitjoin_collapse(self):
        sj = SplitJoin(duplicate(), [FIR(C2), Identity()], joiner_roundrobin())
        rep = collapse_linear(sj)
        assert rep is not None and rep.push == 2

    def test_existing_linear_filter_reused(self):
        from repro.linear import fir_rep

        lf = LinearFilter(fir_rep(C2))
        assert collapse_linear(lf) is lf.rep

    def test_frequency_filter_expands(self):
        from repro.linear import fir_rep

        ff = FrequencyFilter(fir_rep(C2), block=4)
        rep = collapse_linear(ff)
        assert rep.pop == 4


class TestRewriters:
    @pytest.mark.parametrize(
        "optimize", [apply_combination, apply_frequency, apply_selection]
    )
    def test_semantics_preserved_linear_app(self, optimize):
        base = reference_output(linear_app, periods=64)
        opt, report = optimize(linear_app())
        got = run_stream(opt, periods=64)
        m = min(len(base), len(got))
        assert m >= 48
        assert np.allclose(base[:m], got[:m])

    @pytest.mark.parametrize(
        "optimize", [apply_combination, apply_frequency, apply_selection]
    )
    def test_semantics_preserved_mixed_app(self, optimize):
        base = reference_output(mixed_app, periods=64)
        opt, report = optimize(mixed_app())
        got = run_stream(opt, periods=64)
        m = min(len(base), len(got))
        assert m >= 48
        assert np.allclose(base[:m], got[:m])

    def test_combination_merges_linear_run(self):
        opt, report = apply_combination(linear_app())
        linear_filters = [f for f in opt.filters() if isinstance(f, LinearFilter)]
        assert len(linear_filters) == 1  # the full f1+gain+f2 run
        assert linear_filters[0].rep.peek == len(C1) + len(C2) - 1

    def test_combination_stops_at_nonlinear(self):
        opt, report = apply_combination(mixed_app())
        names = [type(f).__name__ for f in opt.filters()]
        assert names.count("LinearFilter") == 2
        assert "Square" in names

    def test_frequency_mode_uses_fft_filters(self):
        opt, report = apply_frequency(linear_app())
        assert any(isinstance(f, FrequencyFilter) for f in opt.filters())

    def test_original_untouched(self):
        app = linear_app()
        filters_before = list(app.filters())
        apply_combination(app)
        assert list(app.filters()) == filters_before
        # The original still runs.
        out = run_stream(app, periods=8)
        assert len(out) == 8

    def test_splitjoin_whole_collapse(self):
        sj = SplitJoin(duplicate(), [FIR(C2), FIR(list(reversed(C2)))], joiner_roundrobin())
        app = Pipeline(ArraySource(DATA), sj, CollectSink())
        base = run_stream(app, periods=32)
        sj2 = SplitJoin(duplicate(), [FIR(C2), FIR(list(reversed(C2)))], joiner_roundrobin())
        opt, _ = apply_combination(Pipeline(ArraySource(DATA), sj2, CollectSink()))
        got = run_stream(opt, periods=32)
        m = min(len(base), len(got))
        assert np.allclose(base[:m], got[:m])
        assert not any(isinstance(s, SplitJoin) for s in opt.streams())


class TestSelectionChoices:
    def test_selection_prefers_freq_for_long_fir(self):
        app = Pipeline(ArraySource(DATA), FIR([0.01] * 128), CollectSink())
        opt, report = apply_selection(app)
        assert any(isinstance(f, FrequencyFilter) for f in opt.filters())

    def test_selection_prefers_direct_for_short_fir(self):
        app = Pipeline(ArraySource(DATA), FIR([1.0, 2.0]), CollectSink())
        opt, report = apply_selection(app)
        assert not any(isinstance(f, FrequencyFilter) for f in opt.filters())

    def test_selection_reduces_model_cost(self):
        app = linear_app()
        base_cost = sum(
            subtree_cost_per_item(c)
            for c in app.children()
            if not (c.rate.pop == 0 or c.rate.push == 0)
        )
        opt, _ = apply_selection(linear_app())
        opt_cost = sum(
            subtree_cost_per_item(c)
            for c in opt.children()
            if not (hasattr(c, "rate") and (c.rate.pop == 0 or c.rate.push == 0))
        )
        assert opt_cost <= base_cost


class TestLoopSafety:
    def test_loops_not_block_expanded(self):
        """Optimizing an app with a feedback loop must keep it schedulable
        (rate changes inside loops would outgrow the declared delay)."""
        from repro.apps import dtoa

        for optimize in (apply_combination, apply_frequency, apply_selection):
            opt, _ = optimize(dtoa.build())
            base = run_stream(dtoa.build(), periods=16)
            got = run_stream(opt, periods=16)
            m = min(len(base), len(got))
            assert m > 8 and np.allclose(base[:m], got[:m])
