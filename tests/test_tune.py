"""Tests for the profile-guided tuner (``repro.tune``).

Covers the satellite checklist of PR 7: ``_chunk_periods`` edge cases
(tiny graphs, feedback-segmented plans, huge-rate edges), tuned-cache
round-trip and invalidation (plan fingerprint change, host change,
corrupted entries), the ``Interpreter(tune=...)`` wiring including the
``SL306`` discard diagnostic, the honest-cores ``SL304`` auto-degrade,
the work-profile hook on the partitioner, and both CLIs' ``--json``
modes.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings

import numpy as np
import pytest

from repro.errors import EngineDowngradeWarning, StreamItError
from repro.graph import ArraySource, CollectSink, Filter, Pipeline
from repro.runtime import Interpreter
from repro.runtime.array_channel import ArrayChannel
from repro.runtime.plan import _CHUNK_ITEM_CAP
from repro.tune import (
    CHUNK_LADDER,
    Profile,
    TunedParams,
    calibrate,
    clear_tuned_cache,
    host_fingerprint,
    load_tuned,
    store_tuned,
    tune_stream,
    tuned_cache_stats,
    tuned_cache_summary,
)
from repro.tune.cache import _entry_path

from .helpers import FIR, Accumulator, Gain, Offset, Square


@pytest.fixture(autouse=True)
def _isolated_tuned_cache(monkeypatch):
    """Every test gets a private on-disk cache, fresh counters, tiny budget."""
    with tempfile.TemporaryDirectory() as tmp:
        monkeypatch.setenv("REPRO_TUNED_CACHE", tmp)
        monkeypatch.setenv("REPRO_TUNE_BUDGET", "0.01")
        clear_tuned_cache()
        yield
    clear_tuned_cache()


def _pipeline():
    return Pipeline(
        ArraySource([float(i) for i in range(8)]),
        FIR([0.25, 0.5, 0.25], name="fir"),
        Gain(2.0, name="gain"),
        CollectSink(),
    )


def _run(build, engine, periods=6, **opts):
    app = build()
    sink = next((f for f in app.filters() if isinstance(f, CollectSink)), None)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine, **opts)
        try:
            interp.run(periods=periods)
        finally:
            interp.close()
    return (list(sink.collected) if sink is not None else []), interp


class _WidePush(Filter):
    """Pushes more items per firing than the 512 KiB chunk cap covers."""

    def __init__(self, width: int) -> None:
        super().__init__(pop=1, push=width)
        self.width = width

    def work(self) -> None:
        x = self.pop()
        for _ in range(self.width):
            self.push(x)


class _WideSink(Filter):
    def __init__(self, width: int) -> None:
        super().__init__(pop=width, push=0)
        self.width = width

    def work(self) -> None:
        for _ in range(self.width):
            self.pop()


class TestChunkPeriods:
    """Edge cases of the static heuristic the tuner overrides."""

    def test_tiny_graph_gets_full_cap(self):
        _, interp = _run(_pipeline, "batched", periods=2)
        # All edges move 1 item/period, so the cap divides down to itself.
        assert interp.plan.chunk_periods == _CHUNK_ITEM_CAP

    def test_huge_rate_edge_clamps_to_one(self):
        width = _CHUNK_ITEM_CAP * 2

        def build():
            return Pipeline(
                ArraySource([1.0, 2.0]), _WidePush(width), _WideSink(width)
            )

        _, interp = _run(build, "batched", periods=2)
        # One period already overflows the per-edge cap: max(1, cap // width).
        assert interp.plan.chunk_periods == 1

    def test_feedback_segmented_plan_still_chunks(self):
        from repro.graph import Identity, joiner_roundrobin, roundrobin
        from repro.graph.composites import FeedbackLoop

        def build():
            loop = FeedbackLoop(
                joiner_roundrobin(1, 1),
                Gain(0.5),
                roundrobin(1, 1),
                Identity(),
                delay=2,
                init_path=lambda i: 0.0,
            )
            return Pipeline(
                ArraySource([1.0, 2.0, 3.0]), loop, CollectSink()
            )

        _, interp = _run(build, "batched", periods=4)
        plan = interp.plan
        assert plan.segments is not None and not plan.superbatch
        assert plan.chunk_periods >= 1
        # The tuner's override knob works on segmented plans too.
        plan.chunk_periods = 7
        assert plan.chunk_periods == 7

    def test_manual_override_is_honored_by_run(self):
        def run_with_chunk(chunk):
            app = _pipeline()
            sink = next(f for f in app.filters() if isinstance(f, CollectSink))
            interp = Interpreter(app, check=False, engine="batched")
            interp.plan.chunk_periods = chunk
            interp.run(periods=9)
            interp.close()
            return list(sink.collected)

        scalar, _ = _run(_pipeline, "scalar", periods=9)
        assert run_with_chunk(1) == scalar
        assert run_with_chunk(4) == scalar
        assert run_with_chunk(10_000) == scalar


class TestTunedCache:
    def test_round_trip_hit(self):
        params = TunedParams(
            chunk_periods=64,
            work={"fir": 1.5e-6, "gain": 0.5e-6},
            reserve_items={"src->fir": 4096},
        )
        store_tuned("f" * 32, params, meta={"engine": "batched"})
        outcome, loaded, reason, meta = load_tuned("f" * 32)
        assert outcome == "hit" and reason is None
        assert loaded.chunk_periods == 64
        assert loaded.work == params.work
        assert loaded.reserve_items == {"src->fir": 4096}
        assert meta["engine"] == "batched"
        assert tuned_cache_stats["hits"] == 1
        assert tuned_cache_stats["stores"] == 1

    def test_miss_on_unknown_fingerprint(self):
        outcome, params, reason, _ = load_tuned("0" * 32)
        assert outcome == "miss" and params is None
        assert tuned_cache_stats["misses"] == 1

    def test_stale_on_plan_fingerprint_change(self):
        store_tuned("a" * 32, TunedParams(chunk_periods=8), meta={})
        # Simulate a graph edit: entry text claims a different plan hash.
        path = _entry_path("a" * 32)
        doc = json.loads(path.read_text())
        doc["plan"] = "b" * 32
        path.write_text(json.dumps(doc))
        outcome, params, reason, _ = load_tuned("a" * 32)
        assert outcome == "stale" and params is None
        assert "plan" in reason
        assert tuned_cache_stats["stale"] == 1

    def test_stale_on_host_change(self):
        store_tuned("a" * 32, TunedParams(chunk_periods=8), meta={})
        path = _entry_path("a" * 32)
        doc = json.loads(path.read_text())
        doc["host"] = "deadbeefdeadbeef"
        path.write_text(json.dumps(doc))
        outcome, params, reason, _ = load_tuned("a" * 32)
        assert outcome == "stale" and params is None
        assert "host" in reason

    def test_stale_on_corrupted_file(self):
        store_tuned("a" * 32, TunedParams(chunk_periods=8), meta={})
        _entry_path("a" * 32).write_text("{not json")
        outcome, params, reason, _ = load_tuned("a" * 32)
        assert outcome == "stale" and params is None

    def test_stale_on_format_version_bump(self):
        store_tuned("a" * 32, TunedParams(chunk_periods=8), meta={})
        path = _entry_path("a" * 32)
        doc = json.loads(path.read_text())
        doc["format"] = 9999
        path.write_text(json.dumps(doc))
        outcome, params, reason, _ = load_tuned("a" * 32)
        assert outcome == "stale" and "format" in reason

    def test_params_json_round_trip(self):
        params = TunedParams(
            chunk_periods=None, work={"a": 0.25}, reserve_items={"a->b": 7}
        )
        again = TunedParams.from_json(params.to_json())
        assert again == params

    def test_summary_shape(self):
        summary = tuned_cache_summary()
        for key in ("hits", "misses", "stale", "stores", "disk_size", "disk_dir"):
            assert key in summary

    def test_host_fingerprint_stable(self):
        assert host_fingerprint() == host_fingerprint()
        assert len(host_fingerprint()) == 16


class TestTuneStream:
    def test_ladder_contains_default_and_best(self):
        result = tune_stream(_pipeline, engine="batched", repeats=1)
        assert result.ladder, "chunk ladder should run on a compiled plan"
        assert result.default_cell in result.ladder
        assert result.gain is not None and result.gain >= 1.0
        # best_chunk is either a measured rung or the preserved static
        # default (when the run was too short to discriminate above it).
        assert (
            result.best_chunk in result.ladder
            or result.best_chunk == result.default_chunk
        )
        assert result.stored_path is not None and os.path.exists(result.stored_path)

    def test_reserve_hints_follow_best_chunk(self):
        result = tune_stream(_pipeline, engine="batched", repeats=1)
        assert result.params.reserve_items
        for items in result.params.reserve_items.values():
            assert items > 0

    def test_tuning_leaves_source_stream_untouched(self):
        app = _pipeline()
        sink = next(f for f in app.filters() if isinstance(f, CollectSink))
        tune_stream(app, engine="batched", repeats=1)
        # Measurements ran on clones: the caller's sink saw nothing.
        assert list(sink.collected) == []

    def test_calibrate_produces_profile(self):
        prof = calibrate(_pipeline, periods=16)
        assert prof.periods >= 16  # warmup periods are traced too
        assert set(prof.work) >= {"fir", "gain"}
        assert all(w >= 0 for w in prof.work.values())
        assert any(items > 0 for items in prof.edge_items.values())

    def test_profile_from_report_json(self):
        doc = {
            "filters": [
                {"name": "a+b", "self_time_us": 30.0, "firings": 2, "items": 4},
                {"name": "core:c+d", "self_time_us": 10.0, "firings": 1, "items": 1},
            ]
        }
        prof = Profile.from_report_json(doc)
        assert set(prof.work) == {"a", "b", "c", "d"}
        assert prof.work["a"] == pytest.approx(15e-6)
        assert prof.work["c"] == pytest.approx(5e-6)


class TestInterpreterTuning:
    def test_force_tunes_and_applies(self):
        scalar, _ = _run(_pipeline, "scalar", periods=9)
        tuned, interp = _run(_pipeline, "batched", periods=9, tune="force")
        assert tuned == scalar
        report = interp.engine_report()["tuned"]
        assert report["outcome"] == "forced"
        assert "chunk_periods" in report["applied"]
        assert report["cache"]["stores"] >= 1

    def test_second_process_gets_cache_hit(self):
        _run(_pipeline, "batched", periods=4, tune="force")
        clear_tuned_cache()  # counters only; the disk entry survives
        tuned, interp = _run(_pipeline, "batched", periods=9, tune=True)
        scalar, _ = _run(_pipeline, "scalar", periods=9)
        assert tuned == scalar
        report = interp.engine_report()["tuned"]
        assert report["outcome"] == "hit"
        assert report["cache"]["hits"] == 1
        assert "chunk_periods" in report["applied"]

    def test_host_mismatch_discards_with_sl306(self):
        _, forced = _run(_pipeline, "batched", periods=4, tune="force")
        fingerprint = forced.engine_report()["tuned"]["fingerprint"]
        path = _entry_path(fingerprint)
        doc = json.loads(path.read_text())
        doc["host"] = "deadbeefdeadbeef"
        path.write_text(json.dumps(doc))

        with pytest.warns(EngineDowngradeWarning, match=r"\[SL306\]"):
            interp = Interpreter(_pipeline(), check=False, engine="batched", tune=True)
        report = interp.engine_report()["tuned"]
        assert report["outcome"] == "stale"
        assert any(d.code == "SL306" for d in interp.downgrades)
        interp.close()

    def test_sl306_never_raises_under_strict(self):
        _, forced = _run(_pipeline, "batched", periods=4, tune="force")
        fingerprint = forced.engine_report()["tuned"]["fingerprint"]
        path = _entry_path(fingerprint)
        path.write_text("{corrupt")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                _pipeline(), check=False, engine="batched", strict=True, tune=True
            )
            scalar, _ = _run(_pipeline, "scalar", periods=6)
            sink = next(
                f for f in interp.stream.filters() if isinstance(f, CollectSink)
            )
            interp.run(periods=6)
            assert list(sink.collected) == scalar
            interp.close()

    def test_tune_off_reports_off(self):
        _, interp = _run(_pipeline, "batched", periods=2)
        assert interp.engine_report()["tuned"] == {"mode": "off"}

    def test_bad_tune_value_rejected(self):
        with pytest.raises(StreamItError):
            Interpreter(_pipeline(), check=False, tune="sometimes")

    def test_codegen_force_bit_exact(self):
        scalar, _ = _run(_pipeline, "scalar", periods=9)
        tuned, interp = _run(_pipeline, "codegen", periods=9, tune="force")
        assert interp.engine_used == "codegen"
        assert tuned == scalar
        assert "chunk_periods" in interp.engine_report()["tuned"]["applied"]


class TestHonestCores:
    def test_single_core_auto_degrades_with_sl304(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        with pytest.warns(EngineDowngradeWarning, match=r"\[SL304\]"):
            interp = Interpreter(_pipeline(), check=False, engine="parallel")
        assert interp.engine_used == "batched"
        assert any(d.code == "SL304" for d in interp.downgrades)
        interp.close()

    def test_explicit_cores_override_wins(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        scalar, _ = _run(_pipeline, "scalar", periods=6)
        collected, interp = _run(_pipeline, "parallel", periods=6, cores=2)
        assert interp.engine_used == "parallel"
        assert collected == scalar


class TestWorkProfile:
    def _model(self):
        from repro.graph import flatten
        from repro.scheduling import repetitions

        stream = Pipeline(
            ArraySource([1.0] * 8),
            FIR([0.5, 0.5], name="fir"),
            Square(),
            CollectSink(),
        )
        graph = flatten(stream)
        return stream, graph, repetitions(graph)

    def test_apply_work_profile_rescales(self):
        from repro.machine.model import ModelGraph
        from repro.mapping.strategies import apply_work_profile

        _, graph, reps = self._model()
        model = ModelGraph.from_flatgraph(graph, reps)
        static_total = sum(a.work for a in model.actors)
        # Pretend measurement says fir is 9x the cost of everything else.
        fir = next(a for a in model.actors if a.name == "fir")
        others = [a for a in model.actors if a.name != "fir"]
        profile = {fir.name: 9e-6, **{a.name: 1e-6 for a in others}}
        applied = apply_work_profile(model, profile)
        assert applied == len(model.actors)
        # Total stays commensurate with the static estimate...
        assert sum(a.work for a in model.actors) == pytest.approx(static_total)
        # ...but the ratios now follow the measurement.
        assert fir.work == pytest.approx(9 * others[0].work)

    def test_partition_accepts_work_profile(self):
        from repro.mapping.strategies import partition_nodes

        stream, graph, reps = self._model()
        baseline = partition_nodes(stream, graph, reps, "combined", 2)
        profiled = partition_nodes(
            stream, graph, reps, "combined", 2, work_profile={"fir": 5e-6}
        )
        # Same compute-node universe either way; only the weights moved.
        assert sorted(n.name for n in baseline) == sorted(
            n.name for n in profiled
        )
        assert all(core in (0, 1) for core in profiled.values())


class TestPresize:
    def test_array_channel_reserve_grows_capacity(self):
        chan = ArrayChannel("x")
        before = chan._buf.size
        chan.reserve(before * 4)
        assert chan._buf.size >= before * 4
        chan.push(1.0)
        assert chan.pop() == 1.0

    def test_plan_presize_targets_named_edges(self):
        interp = Interpreter(_pipeline(), check=False, engine="batched")
        edges = {
            f"{e.src.name}->{e.dst.name}" for e in interp.plan.graph.edges
        }
        interp.plan.presize({name: 1 << 18 for name in edges})
        for edge in interp.plan.graph.edges:
            chan = interp.plan.channels.get(edge)
            if isinstance(chan, ArrayChannel):
                assert chan._buf.size >= 1 << 18
        interp.close()


class TestTuneCLI:
    def test_tune_json(self, capsys):
        from repro.tune.__main__ import main

        rc = main(["tune", "FIR", "--engine", "batched", "--repeats", "1", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["app"] == "FIR"
        assert doc["ladder"]
        assert doc["stored_path"]

    def test_show_and_clear(self, capsys):
        from repro.tune.__main__ import main

        assert main(["tune", "FIR", "--engine", "batched", "--repeats", "1"]) == 0
        capsys.readouterr()
        assert main(["show", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"]
        assert main(["clear", "--disk"]) == 0
        capsys.readouterr()
        assert main(["show", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == {}

    def test_unknown_app_fails(self, capsys):
        from repro.tune.__main__ import main

        assert main(["tune", "NoSuchApp"]) == 1
