"""Tests for teleport messaging: portals, delivery timing, constraints."""

import pytest

from repro.errors import MessagingError
from repro.graph import ArraySource, CollectSink, Filter, NullSink, Pipeline, flatten
from repro.runtime import BEST_EFFORT, Interpreter, Portal, TimeInterval
from repro.scheduling import Configuration, ConstraintSystem, MessageConstraint, max_latency
from tests.helpers import Gain


class Tunable(Filter):
    """Receiver: scales items by a message-settable factor."""

    def __init__(self, name=None):
        super().__init__(pop=1, push=1, name=name)
        self.factor = 1.0
        self.log = []

    def set_factor(self, factor):
        self.factor = factor
        self.log.append(factor)

    def work(self):
        self.push(self.pop() * self.factor)


class DownstreamSender(Filter):
    """Sends one message on its k-th firing."""

    def __init__(self, portal, fire_at, latency, name=None):
        super().__init__(pop=1, push=1, name=name)
        self.portal = portal
        self.fire_at = fire_at
        self.latency = latency
        self.fired = 0

    def work(self):
        self.fired += 1
        if self.fired == self.fire_at:
            interval = (
                None if self.latency is None else TimeInterval(max_time=self.latency)
            )
            self.portal.set_factor(100.0, interval=interval)
        self.push(self.pop())


def radio(fire_at=3, latency=2, upstream=True):
    """source -> [tunable] -> sender -> [tunable'] -> sink layout.

    With ``upstream`` the receiver is before the sender, else after.
    """
    portal = Portal()
    if upstream:
        receiver = Tunable(name="recv")
        portal.register(receiver)
        sender = DownstreamSender(portal, fire_at, latency, name="send")
        app = Pipeline(ArraySource([1.0]), receiver, sender, CollectSink())
    else:
        sender = DownstreamSender(portal, fire_at, latency, name="send")
        receiver = Tunable(name="recv")
        portal.register(receiver)
        app = Pipeline(ArraySource([1.0]), sender, receiver, CollectSink())
    return app, receiver


class TestTimeInterval:
    def test_validates(self):
        with pytest.raises(MessagingError):
            TimeInterval(max_time=1, min_time=2)
        with pytest.raises(MessagingError):
            TimeInterval(max_time=-1)

    def test_best_effort_is_none(self):
        assert BEST_EFFORT is None


class TestPortal:
    def test_requires_registration(self):
        app, receiver = radio()
        portal = Portal()
        interp = Interpreter(app)
        portal.bind(interp)
        with pytest.raises(MessagingError):
            portal.send("set_factor", (1.0,), {}, None)

    def test_requires_binding(self):
        portal = Portal()
        portal.register(Tunable())
        with pytest.raises(MessagingError):
            portal.set_factor(1.0)

    def test_register_rejects_non_filter(self):
        with pytest.raises(MessagingError):
            Portal().register(object())

    def test_broadcast_to_all_receivers(self):
        portal = Portal()
        r1, r2 = Tunable(name="r1"), Tunable(name="r2")
        portal.register(r1)
        portal.register(r2)
        sender = DownstreamSender(portal, 1, None, name="send")
        app = Pipeline(ArraySource([1.0]), r1, r2, sender, CollectSink())
        Interpreter(app).run(periods=3)
        assert r1.log == [100.0]
        assert r2.log == [100.0]


class TestDeliveryTiming:
    def test_upstream_delivery_latency(self):
        """Upstream receiver keeps its old factor for exactly λ more of its
        outputs past the sender's send point."""
        app, receiver = radio(fire_at=3, latency=2, upstream=True)
        sink = app.children()[-1]
        Interpreter(app).run(periods=10)
        out = sink.collected
        # Sender sends during its 3rd firing (having pushed s=2 items
        # before).  Wavefront: receiver output item s + λ = 4 is the last
        # unaffected one; items 5+ are scaled by 100.
        assert out[:4] == [1.0, 1.0, 1.0, 1.0]
        assert all(v == 100.0 for v in out[4:])

    def test_downstream_delivery_latency(self):
        app, receiver = radio(fire_at=3, latency=2, upstream=False)
        sink = app.children()[-1]
        Interpreter(app).run(periods=10)
        out = sink.collected
        # s = 3 items pushed when sending (send happens after push? no:
        # push after send in work, so s = 2); threshold = max(s + push·(λ-1))
        # = 3: receiver outputs 1..3 unaffected.
        assert out[:3] == [1.0, 1.0, 1.0]
        assert all(v == 100.0 for v in out[3:])

    def test_best_effort_delivers_next_firing(self):
        app, receiver = radio(fire_at=2, latency=None, upstream=True)
        Interpreter(app).run(periods=6)
        assert receiver.log == [100.0]

    def test_message_outside_work_rejected(self):
        app, receiver = radio()
        interp = Interpreter(app)
        portal = Portal()
        portal.register(receiver)
        portal.bind(interp)
        with pytest.raises(MessagingError):
            portal.set_factor(5.0)


class TestConstraintSystem:
    def _system(self, latency=2):
        up = Gain(1.0, name="up")
        down = Gain(1.0, name="down")
        app = Pipeline(ArraySource([1.0]), up, down, NullSink())
        graph = flatten(app)
        constraint = MessageConstraint(sender=down, receiver=up, latency=latency)
        return graph, ConstraintSystem(graph, [constraint]), up, down

    def test_initial_configuration_satisfies(self):
        graph, system, up, down = self._system()
        config = Configuration(graph, system)
        assert system.satisfied(config.pushed)

    def test_upstream_receiver_bounded(self):
        graph, system, up, down = self._system(latency=2)
        config = Configuration(graph, system)
        src = graph.nodes[0]
        up_node = graph.node_for(up)
        # The upstream filter may run ahead only λ + pipeline slack firings.
        fired = 0
        while config.can_fire(up_node) and fired < 50:
            config.fire(src)
            config.fire(up_node)
            fired += 1
        assert fired < 50  # the constraint eventually blocks it

    def test_max_latency_directive(self):
        up = Gain(1.0)
        down = Gain(1.0)
        constraint = max_latency(up, down, 4)
        assert constraint.sender is down
        assert constraint.receiver is up
        assert constraint.latency == 4

    def test_max_items_bound(self):
        graph, system, up, down = self._system()
        config = Configuration(graph, max_items=2)
        src = graph.nodes[0]
        config.fire(src)
        config.fire(src)
        assert not config.can_fire(src)  # 3rd live item would exceed bound
        up_node = graph.node_for(up)
        config.fire(up_node)  # consumes one, produces one: still 2 live
        assert config.live_items() == 2


class TestOperationalSemantics:
    def test_transition_rule_requires_peek(self):
        fir_app = Pipeline(ArraySource([1.0]), Gain(1.0), NullSink())
        graph = flatten(fir_app)
        config = Configuration(graph)
        gain_node = graph.nodes[1]
        assert not config.can_fire(gain_node)
        with pytest.raises(Exception):
            config.fire(gain_node)
        config.fire(graph.nodes[0])
        assert config.can_fire(gain_node)

    def test_fireable_set(self):
        app = Pipeline(ArraySource([1.0]), Gain(1.0), NullSink())
        graph = flatten(app)
        config = Configuration(graph)
        assert [n.name for n in config.fireable()] == [graph.nodes[0].name]
