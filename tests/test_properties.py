"""Cross-cutting property-based tests on the core invariants."""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EngineDowngradeWarning
from repro.graph import (
    ArraySource,
    CollectSink,
    Decimator,
    Expander,
    Identity,
    Pipeline,
    SplitJoin,
    duplicate,
    flatten,
    joiner_roundrobin,
    roundrobin,
)
from repro.graph.base import Filter
from repro.graph.composites import FeedbackLoop
from repro.linear import LinearRep, combine_pipeline, extract_linear, fir_rep
from repro.runtime import Channel, Interpreter
from repro.runtime.messaging import Portal, TimeInterval
from repro.scheduling import build_schedule, repetitions
from tests.helpers import FIR, run_pipeline

rng = np.random.default_rng(7)

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestChannelProperties:
    @settings(max_examples=50, deadline=None)
    @given(items=st.lists(finite_floats, max_size=60))
    def test_fifo_order_preserved(self, items):
        ch = Channel()
        for v in items:
            ch.push(v)
        assert [ch.pop() for _ in items] == items

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(st.just("push"), st.just("pop")), min_size=1, max_size=200
        )
    )
    def test_counters_invariant(self, ops):
        """pushed - popped == occupancy, always."""
        ch = Channel()
        for op in ops:
            if op == "push":
                ch.push(1.0)
            elif ch.occupancy:
                ch.pop()
        assert ch.pushed_count - ch.popped_count == ch.occupancy
        assert ch.occupancy >= 0


class TestSchedulingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        up=st.integers(min_value=1, max_value=6),
        down=st.integers(min_value=1, max_value=6),
    )
    def test_rate_conversion_volume(self, up, down):
        """A steady period of up(u)/down(d) moves exactly lcm-scaled items."""
        from math import lcm

        from repro.graph import NullSink

        graph = flatten(
            Pipeline(ArraySource([1.0]), Expander(up), Decimator(down), NullSink())
        )
        reps = repetitions(graph)
        expander = next(n for n in graph.nodes if "Expander" in n.name)
        decimator = next(n for n in graph.nodes if "Decimator" in n.name)
        assert reps[expander] * up == reps[decimator] * down == lcm(up, down)

    @settings(max_examples=25, deadline=None)
    @given(
        branches=st.integers(min_value=2, max_value=5),
        periods=st.integers(min_value=1, max_value=4),
    )
    def test_duplicate_fanout_volume(self, branches, periods):
        """A duplicate split-join of identities emits n copies per input."""
        sj = SplitJoin(
            duplicate(),
            [Identity() for _ in range(branches)],
            joiner_roundrobin(),
        )
        out = run_pipeline(sj, data=[1.0, 2.0], periods=periods * 2)
        assert len(out) == periods * 2 * branches

    @settings(max_examples=25, deadline=None)
    @given(taps=st.integers(min_value=2, max_value=12))
    def test_peek_priming_exact(self, taps):
        """Init schedule supplies exactly taps-1 extra source firings."""
        from repro.graph import NullSink

        graph = flatten(Pipeline(ArraySource([1.0]), FIR([1.0] * taps), NullSink()))
        prog = build_schedule(graph)
        assert prog.init.total_firings == taps - 1


class TestLinearAlgebraProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        taps1=st.integers(min_value=1, max_value=5),
        taps2=st.integers(min_value=1, max_value=5),
        taps3=st.integers(min_value=1, max_value=5),
    )
    def test_combination_associative(self, taps1, taps2, taps3):
        """(f;g);h == f;(g;h) for FIR cascades."""
        f = fir_rep(rng.normal(size=taps1))
        g = fir_rep(rng.normal(size=taps2))
        h = fir_rep(rng.normal(size=taps3))
        left = combine_pipeline(combine_pipeline(f, g), h)
        right = combine_pipeline(f, combine_pipeline(g, h))
        assert left.equivalent(right)

    @settings(max_examples=30, deadline=None)
    @given(taps=st.integers(min_value=1, max_value=6))
    def test_identity_is_neutral(self, taps):
        f = fir_rep(rng.normal(size=taps))
        ident = fir_rep([1.0])
        assert combine_pipeline(f, ident).equivalent(f)
        assert combine_pipeline(ident, f).equivalent(f)

    @settings(max_examples=30, deadline=None)
    @given(
        k1=st.integers(min_value=1, max_value=4),
        k2=st.integers(min_value=1, max_value=4),
    )
    def test_expansion_composes(self, k1, k2):
        """expand(k1).expand(k2) == expand(k1*k2)."""
        rep = LinearRep(rng.normal(size=(2, 3)), rng.normal(size=2), pop=2)
        assert rep.expand(k1).expand(k2).equivalent(rep.expand(k1 * k2))

    @settings(max_examples=20, deadline=None)
    @given(
        gains=st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False),
            min_size=2,
            max_size=5,
        )
    )
    def test_gain_chain_multiplies(self, gains):
        """Extracted chained gains combine to the product gain."""
        reps = [fir_rep([g]) for g in gains]
        combined = reps[0]
        for rep in reps[1:]:
            combined = combine_pipeline(combined, rep)
        assert np.isclose(combined.A[0, 0], float(np.prod(gains)))


class TestEndToEndProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        taps=st.lists(
            st.floats(min_value=-2, max_value=2, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        periods=st.integers(min_value=4, max_value=24),
    )
    def test_optimization_equivalence(self, taps, periods):
        """apply_combination never changes a program's output stream."""
        from repro.linear import apply_combination
        from tests.helpers import run_stream

        data = [1.0, -1.0, 2.0, 0.5]

        def build():
            return Pipeline(ArraySource(data), FIR(taps), CollectSink())

        base = run_stream(build(), periods)
        opt, _ = apply_combination(build())
        got = run_stream(opt, periods)
        assert np.allclose(base, got[: len(base)])

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=2, max_value=4), taps=st.integers(min_value=2, max_value=5))
    def test_fission_equivalence(self, k, taps):
        """Fission never changes a program's output stream."""
        from repro.transforms import fiss

        data = [1.0, -1.0, 2.0, 0.5, 3.0, -2.0]
        coeffs = list(rng.normal(size=taps))
        base = run_pipeline(FIR(coeffs), data=data, periods=4 * k)
        got = run_pipeline(fiss(FIR(coeffs), k), data=data, periods=4)
        m = min(len(base), len(got))
        assert m > 0 and np.allclose(base[:m], got[:m])


# ---------------------------------------------------------------------------
# Differential fuzzing: random graphs, scalar vs batched, bit-exact
# ---------------------------------------------------------------------------


class _FuzzMap(Filter):
    """Stateless elementwise map (exercises the generic vector lift)."""

    def __init__(self, a: float, b: float, mode: int) -> None:
        super().__init__(pop=1, push=1)
        self.a = a
        self.b = b
        self.mode = mode

    def work(self) -> None:
        x = self.pop()
        if self.mode == 0:
            y = self.a * x + self.b
        elif self.mode == 1:
            y = math.sin(x) * self.a
        else:
            y = x * x - self.b
        self.push(y)


class _FuzzPeek(Filter):
    """Stateless peeking weighted sum (exercises the sliding-window lift)."""

    def __init__(self, taps) -> None:
        super().__init__(peek=len(taps), pop=1, push=1)
        self.taps = tuple(taps)

    def work(self) -> None:
        total = 0.0
        for i in range(len(self.taps)):
            total += self.peek(i) * self.taps[i]
        self.pop()
        self.push(total)


class _FuzzRate(Filter):
    """Stateless multi-rate (pop p, push q) reducer/expander."""

    def __init__(self, p: int, q: int) -> None:
        super().__init__(pop=p, push=q)

    def work(self) -> None:
        total = 0.0
        for _ in range(self.rate.pop):
            total += self.pop()
        for j in range(self.rate.push):
            self.push(total * (j + 1))


class _FuzzStateful(Filter):
    """Serial recurrence (the trial demotes this to the hoisted loop path)."""

    def __init__(self) -> None:
        super().__init__(pop=1, push=1)
        self.acc = 0.0

    def init(self) -> None:
        self.acc = 0.0

    def work(self) -> None:
        self.acc = self.acc * 0.5 + self.pop()
        self.push(self.acc)


class _FuzzShaper(Filter):
    """Feedback-loop body: merges the input with the fed-back item."""

    def __init__(self, leak: float) -> None:
        super().__init__(pop=2, push=2)
        self.leak = leak

    def work(self) -> None:
        x = self.pop()
        fed = self.pop()
        y = x - self.leak * fed
        self.push(y)
        self.push(y * 0.5)


class _FuzzGain(Filter):
    """Teleport receiver: gain retuned by ``set_gain`` messages."""

    def __init__(self) -> None:
        super().__init__(pop=1, push=1)
        self.gain = 1.0

    def init(self) -> None:
        self.gain = 1.0

    def set_gain(self, gain: float) -> None:
        self.gain = gain

    def work(self) -> None:
        self.push(self.pop() * self.gain)


class _FuzzSender(Filter):
    """Teleport sender: messages the portal on a threshold crossing."""

    def __init__(self, portal: Portal, threshold: float, latency: int) -> None:
        super().__init__(pop=1, push=1)
        self.portal = portal
        self.threshold = threshold
        self.latency = latency
        self._quiet = 0

    def init(self) -> None:
        self._quiet = 0

    def work(self) -> None:
        value = self.pop()
        if self._quiet > 0:
            self._quiet -= 1
        elif value > self.threshold:
            self.portal.set_gain(
                2.0 + (value - self.threshold) % 1.0,
                interval=TimeInterval(max_time=self.latency),
            )
            self._quiet = 3
        self.push(value)


def _random_stage(gen):
    kind = int(gen.integers(0, 5))
    if kind == 0:
        return _FuzzMap(
            float(gen.uniform(-2, 2)), float(gen.uniform(-1, 1)), int(gen.integers(0, 3))
        )
    if kind == 1:
        return _FuzzPeek([float(v) for v in gen.uniform(-1, 1, size=int(gen.integers(2, 6)))])
    if kind == 2:
        return _FuzzRate(int(gen.integers(1, 4)), int(gen.integers(1, 4)))
    if kind == 3:
        return _FuzzStateful()
    branches = int(gen.integers(2, 4))
    children = [
        Pipeline(_FuzzMap(float(gen.uniform(-2, 2)), 0.0, 0), Identity())
        if gen.integers(0, 2)
        else _FuzzStateful()
        for _ in range(branches)
    ]
    if gen.integers(0, 2):
        return SplitJoin(duplicate(), children, joiner_roundrobin())
    return SplitJoin(
        roundrobin(*([1] * branches)), children, joiner_roundrobin(*([1] * branches))
    )


def _run_engine(build, engine, periods, **engine_opts):
    app = build()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine, **engine_opts)
        try:
            interp.run(periods=periods)
        finally:
            interp.close()
    return list(sink.collected), interp


@pytest.fixture(scope="module", autouse=True)
def _isolated_codegen_cache():
    """Keep fuzz-generated codegen modules out of the repo's cache dir."""
    import os
    import tempfile

    from repro.runtime import clear_codegen_cache

    old = os.environ.get("REPRO_CODEGEN_CACHE")
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_CODEGEN_CACHE"] = tmp
        clear_codegen_cache()
        yield
    if old is None:
        os.environ.pop("REPRO_CODEGEN_CACHE", None)
    else:
        os.environ["REPRO_CODEGEN_CACHE"] = old
    clear_codegen_cache()


@pytest.fixture(scope="module", autouse=True)
def _isolated_tuned_cache():
    """Force-tuned fuzz arms get a private cache and a tiny ladder budget."""
    import os
    import tempfile

    from repro.tune import clear_tuned_cache

    old_cache = os.environ.get("REPRO_TUNED_CACHE")
    old_budget = os.environ.get("REPRO_TUNE_BUDGET")
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_TUNED_CACHE"] = tmp
        os.environ["REPRO_TUNE_BUDGET"] = "0.005"
        clear_tuned_cache()
        yield
    for key, old in (
        ("REPRO_TUNED_CACHE", old_cache),
        ("REPRO_TUNE_BUDGET", old_budget),
    ):
        if old is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = old
    clear_tuned_cache()


class TestBatchedEngineDifferential:
    """Randomized engine-differential tests: every generated graph must
    produce bit-identical outputs on the scalar, batched, and codegen
    engines (a three-way matrix — the codegen module splices the same
    kernels the batched plan runs, so it inherits the same contract)."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_pipelines_bit_exact(self, seed):
        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-4, 4, size=8)]
        n_stages = int(gen.integers(1, 4))
        spec_seed = int(gen.integers(0, 2**32))

        def build():
            g = np.random.default_rng(spec_seed)
            return Pipeline(
                ArraySource(data),
                *[_random_stage(g) for _ in range(n_stages)],
                CollectSink(),
            )

        scalar, _ = _run_engine(build, "scalar", 5)
        batched, interp = _run_engine(build, "batched", 5)
        assert interp.engine_used == "batched"
        assert batched == scalar
        generated, cg_interp = _run_engine(build, "codegen", 5)
        assert cg_interp.engine_used == "codegen"
        assert generated == scalar
        # The tuned arm: force-tune (measured chunk + presize hints applied)
        # and demand the same bits — tuning must never change semantics.
        tuned, tuned_interp = _run_engine(build, "codegen", 5, tune="force")
        assert tuned_interp.engine_used == "codegen"
        assert tuned_interp.engine_report()["tuned"]["outcome"] == "forced"
        assert tuned == scalar

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        delay=st.integers(min_value=1, max_value=4),
    )
    def test_random_feedback_loops_bit_exact(self, seed, delay):
        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-2, 2, size=6)]
        leak = float(gen.uniform(0.1, 0.9))
        taps = [float(v) for v in gen.uniform(-1, 1, size=4)]

        def build():
            loop = FeedbackLoop(
                joiner_roundrobin(1, 1),
                _FuzzShaper(leak),
                roundrobin(1, 1),
                Identity(),
                delay=delay,
                init_path=lambda i: 0.0,
            )
            return Pipeline(
                ArraySource(data), _FuzzPeek(taps), loop, _FuzzMap(0.5, 1.0, 0), CollectSink()
            )

        scalar, _ = _run_engine(build, "scalar", 6)
        batched, interp = _run_engine(build, "batched", 6)
        assert interp.engine_used == "batched"
        assert not interp.plan.superbatch
        assert interp.plan.segments is not None
        assert batched == scalar
        generated, cg_interp = _run_engine(build, "codegen", 6)
        assert cg_interp.engine_used == "codegen"
        assert generated == scalar

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        latency=st.integers(min_value=1, max_value=8),
        upstream=st.booleans(),
    )
    def test_random_portal_messaging_bit_exact(self, seed, latency, upstream):
        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-4, 4, size=8)]
        threshold = float(gen.uniform(0.0, 2.0))

        def build():
            portal = Portal()
            receiver = _FuzzGain()
            portal.register(receiver)
            sender = _FuzzSender(portal, threshold, latency)
            stages = (
                [receiver, _FuzzMap(1.5, 0.0, 0), sender]
                if upstream
                else [sender, _FuzzMap(1.5, 0.0, 0), receiver]
            )
            return Pipeline(ArraySource(data), *stages, CollectSink())

        scalar, scalar_interp = _run_engine(build, "scalar", 8)
        batched, interp = _run_engine(build, "batched", 8)
        assert scalar_interp.has_messaging
        assert interp.engine_used == "batched"
        assert batched == scalar
        # Teleport messaging disables codegen for the whole plan (SL305):
        # the request must still run, batched, with identical output.
        generated, cg_interp = _run_engine(build, "codegen", 8)
        assert cg_interp.engine_used in ("batched", "scalar")
        assert generated == scalar

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_certified_filters_take_trusted_path_bit_exact(self, seed):
        """Differential guard on the static vectorization proof.

        Any filter the analyzer certifies (SL300) must actually run on the
        trusted lifted path — no trial clones, and never a runtime
        demotion to loop mode (a demotion would mean the proof was
        unsound) — while the whole graph stays bit-exact vs scalar.
        """
        from repro.analysis import analyze_filter

        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-4, 4, size=8)]
        n_stages = int(gen.integers(1, 4))
        spec_seed = int(gen.integers(0, 2**32))

        def build():
            g = np.random.default_rng(spec_seed)
            return Pipeline(
                ArraySource(data),
                *[_random_stage(g) for _ in range(n_stages)],
                CollectSink(),
            )

        scalar, _ = _run_engine(build, "scalar", 5)
        batched, interp = _run_engine(build, "batched", 5)
        assert batched == scalar
        report = interp.plan.vectorization_report()
        certified = 0
        for node in interp.graph.filter_nodes():
            analysis = analyze_filter(node.filter)
            info = report.get(node.name)
            if info is None or info["kind"] == "work_batch":
                continue
            if analysis.certified:
                certified += 1
                assert info["kind"] != "loop", (
                    f"{node.name}: certified filter was demoted to loop "
                    f"mode ({info['code']}: {info['reason']}) — unsound proof"
                )
                if info["kind"] == "lifted":
                    assert info["trusted"], (
                        f"{node.name}: certified filter took the trial path"
                    )
            elif info["kind"] == "lifted":
                # Uncertified filters may still lift, but only through the
                # audited trial path, never on trust.
                assert not info["trusted"], node.name
        # The generator always emits at least one certifiable stage kind in
        # most draws; the guard is vacuous only if nothing certified.
        stateless = [
            n for n in interp.graph.filter_nodes()
            if type(n.filter).__name__ in ("_FuzzMap", "_FuzzPeek", "_FuzzRate")
        ]
        if stateless:
            assert certified > 0

    def test_fused_chain_bit_exact(self):
        """A deterministic all-SISO pipeline must fuse and stay bit-exact."""

        def build():
            return Pipeline(
                ArraySource([1.0, -2.0, 3.5, 0.25]),
                _FuzzMap(1.25, -0.5, 0),
                _FuzzMap(0.75, 0.25, 2),
                _FuzzRate(2, 3),
                _FuzzMap(-1.5, 0.0, 1),
                CollectSink(),
            )

        scalar, _ = _run_engine(build, "scalar", 7)
        batched, interp = _run_engine(build, "batched", 7)
        assert interp.plan.fused_chains, "expected at least one fused chain"
        assert batched == scalar
        generated, cg_interp = _run_engine(build, "codegen", 7)
        assert cg_interp.engine_used == "codegen"
        assert generated == scalar


class TestParallelEngineDifferential:
    """The parallel engine must be bit-exact against scalar and batched.

    Random pipelines from the fuzz generator are run under every mapping
    strategy at ``cores=2``.  Strategies that cannot split the graph (or
    graphs the parallel engine refuses) downgrade to batched with SL304 —
    that structured fallback is accepted; a parallel run with *different
    output* is not.
    """

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_parallel_matches_scalar_and_batched(self, seed):
        from repro.mapping.strategies import STRATEGIES

        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-4, 4, size=8)]
        n_stages = int(gen.integers(1, 4))
        spec_seed = int(gen.integers(0, 2**32))

        def build():
            g = np.random.default_rng(spec_seed)
            return Pipeline(
                ArraySource(data),
                *[_random_stage(g) for _ in range(n_stages)],
                CollectSink(),
            )

        scalar, _ = _run_engine(build, "scalar", 5)
        batched, _ = _run_engine(build, "batched", 5)
        assert batched == scalar
        ran_parallel = []
        for strategy in STRATEGIES:
            out, interp = _run_engine(
                build, "parallel", 5, strategy=strategy, cores=2
            )
            if interp.engine_used != "parallel":
                # Structured downgrade (SL304) — output must still match.
                assert out == scalar, f"{strategy}: downgraded run diverged"
                continue
            ran_parallel.append(strategy)
            assert out == scalar, f"{strategy}: parallel output diverged"


# ---------------------------------------------------------------------------
# Differential fuzzing: whole-graph analysis artifacts (fusion regions and
# ring-capacity proofs) on random splitjoin graphs
# ---------------------------------------------------------------------------


def _random_pure_stage(g):
    """A filter the analyzer can certify: pure, exact rates."""
    if g.integers(0, 2):
        return _FuzzMap(
            float(g.uniform(-2, 2)), float(g.uniform(-1, 1)), int(g.integers(0, 3))
        )
    return _FuzzPeek(
        [float(v) for v in g.uniform(-1, 1, size=int(g.integers(2, 5)))]
    )


def _random_certifiable_splitjoin(g):
    """A splitjoin whose branches are chains of pure SISO filters —
    exactly the shape ``certified_fusion_regions`` must accept."""
    branches = int(g.integers(2, 5))
    children = []
    for _ in range(branches):
        stages = [_random_pure_stage(g) for _ in range(int(g.integers(1, 3)))]
        children.append(Pipeline(*stages) if len(stages) > 1 else stages[0])
    if g.integers(0, 2):
        return SplitJoin(duplicate(), children, joiner_roundrobin())
    return SplitJoin(
        roundrobin(*([1] * branches)), children, joiner_roundrobin(*([1] * branches))
    )


class TestGraphAnalysisDifferential:
    """Randomized guards on the whole-graph analysis artifacts.

    Every random splitjoin built from pure branches must yield a certified
    fusion region; fusing it in codegen must stay bit-exact vs scalar; and
    the parallel engine must run stall-free at the statically-proved
    minimal ring capacities (``REPRO_RING_SLACK=0``) with identical output.
    """

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_certified_regions_fuse_bit_exact(self, seed):
        import os

        from repro.analysis.graph import certified_fusion_regions
        from repro.graph.flatgraph import flatten

        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-4, 4, size=8)]
        spec_seed = int(gen.integers(0, 2**32))

        def build():
            g = np.random.default_rng(spec_seed)
            stages = [_random_certifiable_splitjoin(g)]
            if g.integers(0, 2):
                stages.append(_random_pure_stage(g))
            return Pipeline(ArraySource(data), *stages, CollectSink())

        regions = certified_fusion_regions(flatten(build()))
        assert regions, "pure-branch splitjoin must certify a region"

        scalar, _ = _run_engine(build, "scalar", 5)
        old = os.environ.get("REPRO_CODEGEN_REGIONS")
        os.environ["REPRO_CODEGEN_REGIONS"] = "1"
        try:
            generated, cg_interp = _run_engine(build, "codegen", 5)
        finally:
            if old is None:
                os.environ.pop("REPRO_CODEGEN_REGIONS", None)
            else:
                os.environ["REPRO_CODEGEN_REGIONS"] = old
        assert generated == scalar
        if cg_interp.engine_used == "codegen":
            report = cg_interp.engine_report()["codegen"]
            blocks = report["blocks"] or []
            assert [b for b in blocks if b["kind"] == "region"], (
                "certified region did not reach the emitted module"
            )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_parallel_stall_free_at_proved_capacity(self, seed):
        import os

        gen = np.random.default_rng(seed)
        data = [float(v) for v in gen.uniform(-4, 4, size=8)]
        spec_seed = int(gen.integers(0, 2**32))

        def build():
            g = np.random.default_rng(spec_seed)
            return Pipeline(
                ArraySource(data),
                _random_certifiable_splitjoin(g),
                _random_pure_stage(g),
                CollectSink(),
            )

        scalar, _ = _run_engine(build, "scalar", 5)
        old = os.environ.get("REPRO_RING_SLACK")
        os.environ["REPRO_RING_SLACK"] = "0"
        try:
            out, interp = _run_engine(
                build, "parallel", 5, strategy="softpipe", cores=2
            )
        finally:
            if old is None:
                os.environ.pop("REPRO_RING_SLACK", None)
            else:
                os.environ["REPRO_RING_SLACK"] = old
        assert out == scalar
        if interp.engine_used == "parallel":
            session = interp.parallel
            proofs = session.ring_proofs
            assert all(p.proved for p in proofs.values())
            for edge in session.ring_edges:
                assert session.channels[edge].capacity == proofs[edge].capacity
