"""Cross-cutting property-based tests on the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    ArraySource,
    CollectSink,
    Decimator,
    Expander,
    Identity,
    Pipeline,
    SplitJoin,
    duplicate,
    flatten,
    joiner_roundrobin,
    roundrobin,
)
from repro.linear import LinearRep, combine_pipeline, extract_linear, fir_rep
from repro.runtime import Channel, Interpreter
from repro.scheduling import build_schedule, repetitions
from tests.helpers import FIR, run_pipeline

rng = np.random.default_rng(7)

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestChannelProperties:
    @settings(max_examples=50, deadline=None)
    @given(items=st.lists(finite_floats, max_size=60))
    def test_fifo_order_preserved(self, items):
        ch = Channel()
        for v in items:
            ch.push(v)
        assert [ch.pop() for _ in items] == items

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(st.just("push"), st.just("pop")), min_size=1, max_size=200
        )
    )
    def test_counters_invariant(self, ops):
        """pushed - popped == occupancy, always."""
        ch = Channel()
        for op in ops:
            if op == "push":
                ch.push(1.0)
            elif ch.occupancy:
                ch.pop()
        assert ch.pushed_count - ch.popped_count == ch.occupancy
        assert ch.occupancy >= 0


class TestSchedulingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        up=st.integers(min_value=1, max_value=6),
        down=st.integers(min_value=1, max_value=6),
    )
    def test_rate_conversion_volume(self, up, down):
        """A steady period of up(u)/down(d) moves exactly lcm-scaled items."""
        from math import lcm

        from repro.graph import NullSink

        graph = flatten(
            Pipeline(ArraySource([1.0]), Expander(up), Decimator(down), NullSink())
        )
        reps = repetitions(graph)
        expander = next(n for n in graph.nodes if "Expander" in n.name)
        decimator = next(n for n in graph.nodes if "Decimator" in n.name)
        assert reps[expander] * up == reps[decimator] * down == lcm(up, down)

    @settings(max_examples=25, deadline=None)
    @given(
        branches=st.integers(min_value=2, max_value=5),
        periods=st.integers(min_value=1, max_value=4),
    )
    def test_duplicate_fanout_volume(self, branches, periods):
        """A duplicate split-join of identities emits n copies per input."""
        sj = SplitJoin(
            duplicate(),
            [Identity() for _ in range(branches)],
            joiner_roundrobin(),
        )
        out = run_pipeline(sj, data=[1.0, 2.0], periods=periods * 2)
        assert len(out) == periods * 2 * branches

    @settings(max_examples=25, deadline=None)
    @given(taps=st.integers(min_value=2, max_value=12))
    def test_peek_priming_exact(self, taps):
        """Init schedule supplies exactly taps-1 extra source firings."""
        from repro.graph import NullSink

        graph = flatten(Pipeline(ArraySource([1.0]), FIR([1.0] * taps), NullSink()))
        prog = build_schedule(graph)
        assert prog.init.total_firings == taps - 1


class TestLinearAlgebraProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        taps1=st.integers(min_value=1, max_value=5),
        taps2=st.integers(min_value=1, max_value=5),
        taps3=st.integers(min_value=1, max_value=5),
    )
    def test_combination_associative(self, taps1, taps2, taps3):
        """(f;g);h == f;(g;h) for FIR cascades."""
        f = fir_rep(rng.normal(size=taps1))
        g = fir_rep(rng.normal(size=taps2))
        h = fir_rep(rng.normal(size=taps3))
        left = combine_pipeline(combine_pipeline(f, g), h)
        right = combine_pipeline(f, combine_pipeline(g, h))
        assert left.equivalent(right)

    @settings(max_examples=30, deadline=None)
    @given(taps=st.integers(min_value=1, max_value=6))
    def test_identity_is_neutral(self, taps):
        f = fir_rep(rng.normal(size=taps))
        ident = fir_rep([1.0])
        assert combine_pipeline(f, ident).equivalent(f)
        assert combine_pipeline(ident, f).equivalent(f)

    @settings(max_examples=30, deadline=None)
    @given(
        k1=st.integers(min_value=1, max_value=4),
        k2=st.integers(min_value=1, max_value=4),
    )
    def test_expansion_composes(self, k1, k2):
        """expand(k1).expand(k2) == expand(k1*k2)."""
        rep = LinearRep(rng.normal(size=(2, 3)), rng.normal(size=2), pop=2)
        assert rep.expand(k1).expand(k2).equivalent(rep.expand(k1 * k2))

    @settings(max_examples=20, deadline=None)
    @given(
        gains=st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False),
            min_size=2,
            max_size=5,
        )
    )
    def test_gain_chain_multiplies(self, gains):
        """Extracted chained gains combine to the product gain."""
        reps = [fir_rep([g]) for g in gains]
        combined = reps[0]
        for rep in reps[1:]:
            combined = combine_pipeline(combined, rep)
        assert np.isclose(combined.A[0, 0], float(np.prod(gains)))


class TestEndToEndProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        taps=st.lists(
            st.floats(min_value=-2, max_value=2, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        periods=st.integers(min_value=4, max_value=24),
    )
    def test_optimization_equivalence(self, taps, periods):
        """apply_combination never changes a program's output stream."""
        from repro.linear import apply_combination
        from tests.helpers import run_stream

        data = [1.0, -1.0, 2.0, 0.5]

        def build():
            return Pipeline(ArraySource(data), FIR(taps), CollectSink())

        base = run_stream(build(), periods)
        opt, _ = apply_combination(build())
        got = run_stream(opt, periods)
        assert np.allclose(base, got[: len(base)])

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=2, max_value=4), taps=st.integers(min_value=2, max_value=5))
    def test_fission_equivalence(self, k, taps):
        """Fission never changes a program's output stream."""
        from repro.transforms import fiss

        data = [1.0, -1.0, 2.0, 0.5, 3.0, -2.0]
        coeffs = list(rng.normal(size=taps))
        base = run_pipeline(FIR(coeffs), data=data, periods=4 * k)
        got = run_pipeline(fiss(FIR(coeffs), k), data=data, periods=4)
        m = min(len(base), len(got))
        assert m > 0 and np.allclose(base[:m], got[:m])
